// Package trace is WhoWas's campaign flight recorder: a lock-cheap
// span tracer that records where each round's wall-clock time went and
// which pipeline operations a fault touched. The platform opens one
// root span per round with child spans per stage (scan, fetch,
// featurize, finalize, plus cluster and carto passes), and the scanner
// and fetcher add sampled per-IP probe/GET spans carrying attributes
// like region, prefix, attempt count and the fault kinds injected into
// them.
//
// Completed spans land in a bounded in-memory ring buffer (the live
// /trace/slowest window) and, optionally, in an append-only JSONL
// journal (see journal.go) from which a whole campaign's span tree can
// be replayed post-mortem. Campaigns of the paper's length (three
// months on EC2) are only debuggable after the fact with exactly this
// kind of record: a slow round or a retry storm must be attributable
// to a region, a prefix, or a stage long after the goroutines that ran
// it are gone.
//
// Like internal/metrics, everything is nil-safe: a nil *Tracer hands
// out nil *Spans, every Span method no-ops on a nil receiver, and
// SampleIP on a nil tracer reports false — an untraced campaign pays
// one nil check per instrumentation site and nothing else (the
// overhead benchmark in internal/core holds the instrumented pipeline
// within ~2% of baseline). Span Start/End take one short mutex each;
// per-IP spans are sampled, so the hot path reaches the lock rarely.
package trace

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Values are strings; use the typed
// constructors for other kinds.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds an integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Config tunes a Tracer.
type Config struct {
	// RingSize bounds the in-memory buffer of completed spans (the
	// /trace/slowest window). Default 4096.
	RingSize int
	// SamplePerMille is the per-IP sampling rate for probe/GET spans:
	// SampleIP admits roughly this fraction of the address space,
	// chosen by a pure hash of the IP so the same addresses are
	// sampled every round and every run. 0 takes the default (10, i.e.
	// 1%); negative disables per-IP spans; >= 1000 samples every IP.
	SamplePerMille int
	// SampleSeed salts the per-IP sampling hash so deployments can
	// rotate which IPs are sampled. The decision stays a pure function
	// of (seed, ip).
	SampleSeed int64
	// Journal, when non-nil, receives one JSON line per completed span
	// (see SpanSnapshot). Writes happen under the tracer's mutex in
	// span-completion order; wrap files in a Journal (journal.go) for
	// buffering and crash-safe renames. If it also implements
	// io.Closer, Tracer.Close closes it.
	Journal io.Writer
}

// WithDefaults resolves zero fields.
func (c Config) WithDefaults() Config {
	out := c
	if out.RingSize <= 0 {
		out.RingSize = 4096
	}
	if out.SamplePerMille == 0 {
		out.SamplePerMille = 10
	}
	return out
}

// Tracer records spans. Safe for concurrent use; a nil *Tracer is a
// valid no-op tracer.
type Tracer struct {
	cfg Config
	ids atomic.Uint64

	mu        sync.Mutex
	active    map[uint64]*Span
	ring      []SpanSnapshot
	ringNext  int
	completed int64
	jerr      error
}

// New builds a tracer.
func New(cfg Config) *Tracer {
	c := cfg.WithDefaults()
	return &Tracer{
		cfg:    c,
		active: make(map[uint64]*Span),
		ring:   make([]SpanSnapshot, 0, c.RingSize),
	}
}

// Span is one timed operation. A nil *Span is a valid no-op handle, so
// call sites need no tracer-enabled branching.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

// Start opens a span. A nil parent makes it a root span; a nil tracer
// returns a nil (no-op) span.
func (t *Tracer) Start(name string, parent *Span, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, id: t.ids.Add(1), name: name, start: time.Now()}
	if parent != nil {
		s.parent = parent.id
	}
	if len(attrs) > 0 {
		s.attrs = append(s.attrs, attrs...)
	}
	t.mu.Lock()
	t.active[s.id] = s
	t.mu.Unlock()
	return s
}

// mix64 is the splitmix64 finalizer, the same mixing netsim, cloudsim
// and the fault layer use for seeded decisions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// SampleIP reports whether per-IP spans should be recorded for ip. The
// decision is a pure function of (SampleSeed, ip) — never a counter or
// an RNG — so identical campaigns journal identical span sets and one
// IP's spans appear in every round it was probed.
func (t *Tracer) SampleIP(ip uint64) bool {
	if t == nil {
		return false
	}
	pm := t.cfg.SamplePerMille
	if pm <= 0 {
		return false
	}
	if pm >= 1000 {
		return true
	}
	return mix64(ip^mix64(uint64(t.cfg.SampleSeed)+0x9e3779b97f4a7c15))%1000 < uint64(pm)
}

// ID returns the span's id (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr adds or replaces attributes. Safe from any goroutine;
// attributes set after End are dropped (the span was already
// journaled).
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
outer:
	for _, a := range attrs {
		for i := range s.attrs {
			if s.attrs[i].Key == a.Key {
				s.attrs[i].Value = a.Value
				continue outer
			}
		}
		s.attrs = append(s.attrs, a)
	}
}

// snapshotLocked copies the span; callers hold s.mu.
func (s *Span) snapshotLocked(now time.Time, active bool) SpanSnapshot {
	snap := SpanSnapshot{
		ID:      s.id,
		Parent:  s.parent,
		Name:    s.name,
		StartNS: s.start.UnixNano(),
		DurNS:   now.Sub(s.start).Nanoseconds(),
		Active:  active,
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			snap.Attrs[a.Key] = a.Value
		}
	}
	return snap
}

// End completes the span: it leaves the active set, enters the ring
// buffer, and is appended to the journal. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	snap := s.snapshotLocked(time.Now(), false)
	s.mu.Unlock()

	t := s.tr
	t.mu.Lock()
	delete(t.active, s.id)
	t.recordLocked(snap)
	t.mu.Unlock()
}

// recordLocked files one completed span into the ring and journal;
// callers hold t.mu.
func (t *Tracer) recordLocked(snap SpanSnapshot) {
	t.completed++
	if len(t.ring) < t.cfg.RingSize {
		t.ring = append(t.ring, snap)
	} else {
		t.ring[t.ringNext] = snap
		t.ringNext = (t.ringNext + 1) % len(t.ring)
	}
	if t.cfg.Journal != nil && t.jerr == nil {
		line, err := json.Marshal(snap)
		if err == nil {
			line = append(line, '\n')
			_, err = t.cfg.Journal.Write(line)
		}
		t.jerr = err
	}
}

// ReserveIDs allocates n consecutive span IDs from this tracer's
// sequence and returns the first, so foreign spans can be renumbered
// into the local ID space without colliding with concurrently started
// spans. Returns 0 (an invalid ID) on a nil tracer or n <= 0.
func (t *Tracer) ReserveIDs(n int) uint64 {
	if t == nil || n <= 0 {
		return 0
	}
	return t.ids.Add(uint64(n)) - uint64(n) + 1
}

// Record ingests already-completed foreign spans — a worker's drained
// span buffer the coordinator merges into its own journal. The spans
// enter the ring and journal exactly as if they had ended here, in the
// order given. Callers renumber IDs into this tracer's space first
// (ReserveIDs plus a parent remap; see fleetobs.RestampSpans) so they
// cannot collide with locally issued spans.
func (t *Tracer) Record(snaps ...SpanSnapshot) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, snap := range snaps {
		snap.Active = false
		t.recordLocked(snap)
	}
}

// Active snapshots the currently open spans, ordered by start time
// (oldest first) — the live "what is the campaign doing right now"
// view behind /trace/active.
func (t *Tracer) Active() []SpanSnapshot {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	out := make([]SpanSnapshot, 0, len(t.active))
	for _, s := range t.active {
		s.mu.Lock()
		out = append(out, s.snapshotLocked(now, true))
		s.mu.Unlock()
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].StartNS != out[j].StartNS {
			return out[i].StartNS < out[j].StartNS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Slowest returns up to n completed spans from the ring buffer,
// worst latency first — the live /trace/slowest view.
func (t *Tracer) Slowest(n int) []SpanSnapshot {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	out := append([]SpanSnapshot(nil), t.ring...)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurNS != out[j].DurNS {
			return out[i].DurNS > out[j].DurNS
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// Completed returns how many spans have ended over the tracer's
// lifetime (the ring keeps only the most recent RingSize of them).
func (t *Tracer) Completed() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.completed
}

// ActiveCount returns the number of currently open spans.
func (t *Tracer) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Err returns the first journal write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jerr
}

// Close flushes and closes the journal (when it implements io.Closer)
// and surfaces any journal write error. The tracer itself stays usable
// for in-memory queries; further completed spans are not journaled.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	j := t.cfg.Journal
	t.cfg.Journal = nil
	err := t.jerr
	t.mu.Unlock()
	if c, ok := j.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// ctxKey keys the span stored in a context.
type ctxKey struct{}

// NewContext returns ctx carrying the span; a nil span returns ctx
// unchanged, so untraced pipelines allocate nothing.
func NewContext(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil. The fault
// injector uses it to annotate whichever probe/GET span initiated a
// dial it tampered with.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}
