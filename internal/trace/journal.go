// The JSONL event journal: one JSON object per completed span,
// appended in completion order. The journal is the campaign's durable
// flight record — the in-memory ring keeps only the recent window,
// but the journal replays the whole span tree of a months-long run.
package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"whowas/internal/atomicfile"
)

// SpanSnapshot is the wire and query form of a span: a plain struct
// that marshals to one journal line. Attrs marshal with sorted keys
// (encoding/json orders map keys), so identical span trees produce
// identical journals modulo the timestamp fields.
type SpanSnapshot struct {
	ID      uint64            `json:"id"`
	Parent  uint64            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	StartNS int64             `json:"start_ns"`
	DurNS   int64             `json:"dur_ns"`
	Active  bool              `json:"active,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Duration returns the span's (possibly still-running) duration.
func (s SpanSnapshot) Duration() time.Duration { return time.Duration(s.DurNS) }

// Attr returns one attribute value, or "".
func (s SpanSnapshot) Attr(key string) string { return s.Attrs[key] }

// FaultInjected reports whether any fault was injected into the
// span's dials — the fault layer annotates spans with "fault.<kind>"
// attributes as it tampers.
func (s SpanSnapshot) FaultInjected() bool {
	for k := range s.Attrs {
		if len(k) > 6 && k[:6] == "fault." {
			return true
		}
	}
	return false
}

// Journal is a buffered, crash-safe JSONL sink for Config.Journal.
// Lines accumulate in <path>.tmp and the file is renamed to its final
// path on Close, so the destination is never truncated mid-write; a
// campaign killed before Close leaves its complete lines in the .tmp
// sibling, which LoadJournal also reads.
type Journal struct {
	f  *atomicfile.File
	bw *bufio.Writer
}

// CreateJournal opens a journal writing to path (via <path>.tmp).
func CreateJournal(path string) (*Journal, error) {
	f, err := atomicfile.Create(path)
	if err != nil {
		return nil, fmt.Errorf("trace: journal: %w", err)
	}
	return &Journal{f: f, bw: bufio.NewWriterSize(f, 64*1024)}, nil
}

// Write appends bytes (the tracer writes whole lines).
func (j *Journal) Write(p []byte) (int, error) { return j.bw.Write(p) }

// Close flushes, syncs and renames the journal into place.
func (j *Journal) Close() error {
	if err := j.bw.Flush(); err != nil {
		j.f.Abort()
		return fmt.Errorf("trace: journal flush: %w", err)
	}
	return j.f.Commit()
}

// ReadJournal parses a JSONL journal. A malformed final line — the
// mark of a crashed writer — is skipped; a malformed line anywhere
// else is an error.
func ReadJournal(r io.Reader) ([]SpanSnapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var out []SpanSnapshot
	var pending error
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if pending != nil {
			return nil, fmt.Errorf("trace: journal: %w", pending)
		}
		var s SpanSnapshot
		if err := json.Unmarshal(line, &s); err != nil {
			pending = err // forgiven only if nothing follows
			continue
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: journal: %w", err)
	}
	return out, nil
}

// LoadJournal reads a journal file; when path does not exist it falls
// back to <path>.tmp, the remnant of a crashed campaign.
func LoadJournal(path string) ([]SpanSnapshot, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		f, err = os.Open(path + ".tmp")
	}
	if err != nil {
		return nil, fmt.Errorf("trace: journal: %w", err)
	}
	defer f.Close()
	spans, rerr := ReadJournal(f)
	if rerr != nil {
		return nil, fmt.Errorf("trace: journal %s: %w", f.Name(), rerr)
	}
	// Journal order is span-completion order; reorder by start for
	// natural reading.
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].ID < spans[j].ID
	})
	return spans, nil
}
