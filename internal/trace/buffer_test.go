package trace

import (
	"fmt"
	"testing"
)

func TestBufferCollectsTracerSpans(t *testing.T) {
	b := NewBuffer(16)
	tr := New(Config{Journal: b, SamplePerMille: 1000})
	root := tr.Start("round", nil, Int("round", 0))
	child := tr.Start("scan", root, String("regions", "r1"))
	child.End()
	root.End()

	if b.Len() != 2 {
		t.Fatalf("buffered %d spans, want 2", b.Len())
	}
	spans := b.Drain()
	if len(spans) != 2 {
		t.Fatalf("drained %d spans, want 2", len(spans))
	}
	// Journal order is completion order: child first.
	if spans[0].Name != "scan" || spans[1].Name != "round" {
		t.Errorf("unexpected order: %q, %q", spans[0].Name, spans[1].Name)
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("child parent %d does not match root id %d", spans[0].Parent, spans[1].ID)
	}
	if spans[0].Attr("regions") != "r1" {
		t.Errorf("attrs lost in round trip: %+v", spans[0].Attrs)
	}
	if b.Len() != 0 {
		t.Errorf("drain left %d spans behind", b.Len())
	}
}

func TestBufferDropsOldestAtCapacity(t *testing.T) {
	b := NewBuffer(4)
	for i := 0; i < 10; i++ {
		line := fmt.Sprintf("{\"id\":%d,\"name\":\"s%d\",\"start_ns\":%d,\"dur_ns\":1}\n", i+1, i, i)
		if _, err := b.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
	}
	if b.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", b.Dropped())
	}
	spans := b.Drain()
	if len(spans) != 4 {
		t.Fatalf("drained %d, want 4", len(spans))
	}
	// The survivors are the newest four, oldest first.
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i+6); s.Name != want {
			t.Errorf("span %d = %q, want %q", i, s.Name, want)
		}
	}
}

func TestBufferPartialAndMalformedLines(t *testing.T) {
	b := NewBuffer(8)
	if _, err := b.Write([]byte(`{"id":1,"name":"a","sta`)); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("partial line buffered early")
	}
	if _, err := b.Write([]byte("rt_ns\":5,\"dur_ns\":2}\nnot json\n")); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1 {
		t.Fatalf("buffered %d, want 1", b.Len())
	}
	if b.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1 (the malformed line)", b.Dropped())
	}
	if got := b.Drain()[0]; got.Name != "a" || got.StartNS != 5 {
		t.Errorf("reassembled span wrong: %+v", got)
	}
}

func TestBufferNilSafe(t *testing.T) {
	var b *Buffer
	if b.Drain() != nil || b.Len() != 0 || b.Dropped() != 0 {
		t.Error("nil buffer not inert")
	}
}

func TestTracerRecordAndReserveIDs(t *testing.T) {
	b := NewBuffer(8)
	tr := New(Config{Journal: b})
	local := tr.Start("round", nil)

	base := tr.ReserveIDs(3)
	if base == 0 {
		t.Fatal("ReserveIDs returned 0")
	}
	if base <= local.ID() {
		t.Fatalf("reserved base %d collides with live span %d", base, local.ID())
	}
	next := tr.Start("after", nil)
	if next.ID() >= base && next.ID() < base+3 {
		t.Fatalf("later span id %d landed inside reserved range [%d,%d)", next.ID(), base, base+3)
	}

	foreign := []SpanSnapshot{
		{ID: base, Name: "scan", StartNS: 1, DurNS: 100, Attrs: map[string]string{"worker": "w0"}},
		{ID: base + 1, Parent: base, Name: "probe", StartNS: 2, DurNS: 50, Active: true},
	}
	tr.Record(foreign...)
	if got := tr.Completed(); got != 2 {
		t.Errorf("completed = %d, want 2 recorded spans", got)
	}
	spans := b.Drain()
	if len(spans) != 2 {
		t.Fatalf("journal received %d spans, want 2", len(spans))
	}
	if spans[1].Active {
		t.Error("Record left a span marked active")
	}
	if spans[0].Attr("worker") != "w0" {
		t.Errorf("attrs lost: %+v", spans[0].Attrs)
	}
	// Recorded spans appear in Slowest like native ones.
	slow := tr.Slowest(1)
	if len(slow) != 1 || slow[0].Name != "scan" {
		t.Errorf("slowest = %+v, want the recorded scan span", slow)
	}

	var nilTr *Tracer
	if nilTr.ReserveIDs(5) != 0 {
		t.Error("nil tracer reserved ids")
	}
	nilTr.Record(SpanSnapshot{ID: 1})
	if tr.ReserveIDs(0) != 0 {
		t.Error("ReserveIDs(0) must return 0")
	}
	local.End()
	next.End()
}
