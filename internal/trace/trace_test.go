package trace

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("round", nil, Int("round", 0))
	if sp != nil {
		t.Fatal("nil tracer handed out a span")
	}
	// Every handle method must be callable on nil.
	sp.SetAttr(String("k", "v"))
	sp.End()
	if sp.ID() != 0 {
		t.Error("nil span has an ID")
	}
	if tr.SampleIP(42) {
		t.Error("nil tracer samples")
	}
	if tr.Active() != nil || tr.Slowest(5) != nil || tr.Completed() != 0 || tr.ActiveCount() != 0 {
		t.Error("nil tracer reports state")
	}
	if err := tr.Close(); err != nil {
		t.Error(err)
	}
	ctx := NewContext(context.Background(), nil)
	if ctx != context.Background() {
		t.Error("NewContext with nil span allocated")
	}
	if FromContext(ctx) != nil {
		t.Error("FromContext found a span in an empty context")
	}
}

func TestSpanLifecycleAndTree(t *testing.T) {
	tr := New(Config{})
	root := tr.Start("round", nil, Int("round", 3), Int("day", 9))
	child := tr.Start("scan", root)
	if got := tr.ActiveCount(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}

	act := tr.Active()
	if len(act) != 2 || !act[0].Active || act[0].Name != "round" {
		t.Fatalf("Active() = %+v", act)
	}

	child.SetAttr(String("region", "east"))
	child.SetAttr(String("region", "west")) // replace, not duplicate
	child.End()
	child.End() // idempotent
	root.SetAttr(Bool("degraded", true))
	root.End()

	if got := tr.ActiveCount(); got != 0 {
		t.Fatalf("active after End = %d", got)
	}
	if got := tr.Completed(); got != 2 {
		t.Fatalf("completed = %d, want 2", got)
	}
	slow := tr.Slowest(10)
	if len(slow) != 2 {
		t.Fatalf("slowest = %d spans", len(slow))
	}
	// Root started first and ended last: it must be the slower one.
	if slow[0].Name != "round" || slow[0].Attr("degraded") != "true" {
		t.Errorf("slowest[0] = %+v", slow[0])
	}
	var scan SpanSnapshot
	for _, s := range slow {
		if s.Name == "scan" {
			scan = s
		}
	}
	if scan.Parent != root.ID() || scan.Attr("region") != "west" {
		t.Errorf("child snapshot = %+v", scan)
	}
	// SetAttr after End is dropped, not raced.
	child.SetAttr(String("late", "x"))
	for _, s := range tr.Slowest(10) {
		if s.Attr("late") != "" {
			t.Error("attribute set after End was recorded")
		}
	}
}

func TestRingBufferBounded(t *testing.T) {
	tr := New(Config{RingSize: 8})
	for i := 0; i < 50; i++ {
		sp := tr.Start("op", nil, Int("i", i))
		sp.End()
	}
	if got := tr.Completed(); got != 50 {
		t.Fatalf("completed = %d", got)
	}
	slow := tr.Slowest(100)
	if len(slow) != 8 {
		t.Fatalf("ring kept %d spans, want 8", len(slow))
	}
	for _, s := range slow {
		if i := atoiAttr(s, "i"); i < 42 {
			t.Errorf("ring kept evicted span i=%d", i)
		}
	}
}

func TestSampleIPDeterministicAndProportional(t *testing.T) {
	tr := New(Config{SamplePerMille: 100})
	tr2 := New(Config{SamplePerMille: 100})
	n := 0
	for ip := uint64(0); ip < 20000; ip++ {
		a, b := tr.SampleIP(ip), tr2.SampleIP(ip)
		if a != b {
			t.Fatalf("sampling not deterministic at ip %d", ip)
		}
		if a {
			n++
		}
	}
	// 10% ± generous slack.
	if n < 1500 || n > 2500 {
		t.Errorf("sampled %d of 20000 at 100 per-mille", n)
	}
	// Different seeds select different subsets.
	seeded := New(Config{SamplePerMille: 100, SampleSeed: 7})
	same := 0
	for ip := uint64(0); ip < 20000; ip++ {
		if tr.SampleIP(ip) && seeded.SampleIP(ip) {
			same++
		}
	}
	if same == n {
		t.Error("seed does not rotate the sampled subset")
	}
	if all := New(Config{SamplePerMille: 1000}); !all.SampleIP(1) {
		t.Error("1000 per-mille did not sample")
	}
	if none := New(Config{SamplePerMille: -1}); none.SampleIP(1) {
		t.Error("negative rate sampled")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(Config{RingSize: 128})
	root := tr.Start("round", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.Start("probe", root, Int("w", w))
				sp.SetAttr(Int("i", i))
				tr.Active()
				sp.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	if got := tr.Completed(); got != 8*200+1 {
		t.Fatalf("completed = %d", got)
	}
}

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Config{Journal: j})

	root := tr.Start("round", nil, Int("round", 0), Int("day", 0))
	scan := tr.Start("scan", root)
	probe := tr.Start("probe", scan, String("ip", "54.0.0.1"), String("region", "east"))
	probe.SetAttr(Bool("fault.dial_loss", true))
	probe.End()
	scan.End()
	fetch := tr.Start("fetch", root)
	fetch.End()
	root.SetAttr(Bool("degraded", false))
	root.End()
	fin := tr.Start("store.finalize", nil, Int("round", 0), Int64("records", 17))
	fin.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	spans, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 5 {
		t.Fatalf("journal has %d spans, want 5", len(spans))
	}
	bds := BreakdownRounds(spans)
	if len(bds) != 1 {
		t.Fatalf("breakdowns = %d", len(bds))
	}
	b := bds[0]
	if b.Round != 0 || b.Degraded {
		t.Errorf("breakdown header = %+v", b)
	}
	for _, stage := range []string{"scan", "fetch", "store.finalize"} {
		if _, ok := b.Stages[stage]; !ok {
			t.Errorf("stage %q missing from breakdown (have %v)", stage, b.Stages)
		}
	}
	// round-tagged orphan + subtree: scan, probe, fetch, store.finalize.
	if b.Spans != 4 {
		t.Errorf("round subtree spans = %d, want 4", b.Spans)
	}
	if b.FaultInjected != 1 {
		t.Errorf("fault-injected spans = %d, want 1", b.FaultInjected)
	}
	if len(b.Slowest) != 1 || b.Slowest[0].Name != "probe" || !b.Slowest[0].FaultInjected() {
		t.Errorf("slowest = %+v", b.Slowest)
	}
}

func TestJournalCrashSafety(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.jsonl")
	j, err := CreateJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := New(Config{Journal: j})
	for i := 0; i < 3; i++ {
		tr.Start("op", nil, Int("i", i)).End()
	}
	// Simulate a crash: flush the buffer but never Close/rename, then
	// truncate mid-line as a kill would.
	j.bw.Flush()
	if _, err := j.f.Write([]byte(`{"id":99,"name":"trunc`)); err != nil {
		t.Fatal(err)
	}
	j.bw.Flush()

	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("journal renamed into place before Close")
	}
	spans, err := LoadJournal(path) // falls back to .tmp
	if err != nil {
		t.Fatalf("post-mortem load: %v", err)
	}
	if len(spans) != 3 {
		t.Fatalf("recovered %d spans, want 3 (truncated line skipped)", len(spans))
	}
}

func TestReadJournalRejectsMidFileCorruption(t *testing.T) {
	in := `{"id":1,"name":"a","start_ns":1,"dur_ns":1}
not json at all
{"id":2,"name":"b","start_ns":2,"dur_ns":1}
`
	if _, err := ReadJournal(strings.NewReader(in)); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestTimedSpanDurations(t *testing.T) {
	tr := New(Config{})
	sp := tr.Start("op", nil)
	time.Sleep(10 * time.Millisecond)
	sp.End()
	s := tr.Slowest(1)[0]
	if s.Duration() < 5*time.Millisecond {
		t.Errorf("duration %v implausibly short", s.Duration())
	}
	if s.Active {
		t.Error("completed span marked active")
	}
}
