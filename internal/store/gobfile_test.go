package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"whowas/internal/ipaddr"
)

// buildSaved writes a 3-round campaign to a temp file and returns the
// path plus the live store it came from.
func buildSaved(t *testing.T) (string, *Store) {
	t.Helper()
	s := New("ec2")
	for r := 0; r < 3; r++ {
		if _, err := s.BeginRound(r * 2); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			rec := mkRecord(fmt.Sprintf("10.%d.0.%d", r, i), r)
			rec.Trackers = []string{"ga"}
			if err := s.Put(rec); err != nil {
				t.Fatal(err)
			}
		}
		s.AddProbed(40)
		if err := s.EndRound(); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "store.gob")
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, s
}

// TestFileBackendLazyExport is the whowas-query regression: exporting
// one round of a saved store must decode exactly that round, not the
// whole campaign.
func TestFileBackendLazyExport(t *testing.T) {
	path, orig := buildSaved(t)
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fb := st.Backend().(*FileBackend)
	if got := fb.Stats().RoundsDecoded; got != 0 {
		t.Fatalf("open decoded %d rounds", got)
	}

	var lazy, eager bytes.Buffer
	if err := st.ExportJSON(&lazy, 1); err != nil {
		t.Fatal(err)
	}
	if got := fb.Stats().RoundsDecoded; got != 1 {
		t.Fatalf("single-round export decoded %d rounds, want 1", got)
	}
	if err := orig.ExportJSON(&eager, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lazy.Bytes(), eager.Bytes()) {
		t.Fatal("ExportJSON diverges between FileBackend and memory")
	}
}

// TestFileBackendDigestIdentity: a saved store reopened lazily
// reproduces the original digest and History byte for byte.
func TestFileBackendDigestIdentity(t *testing.T) {
	path, orig := buildSaved(t)
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.CloudName != "ec2" || st.NumRounds() != 3 {
		t.Fatalf("reopened store: cloud %q, %d rounds", st.CloudName, st.NumRounds())
	}
	want, err := orig.Digest()
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("digest %s, want %s", got, want)
	}
	ip := ipaddr.MustParseAddr("10.1.0.5")
	if h := st.History(ip); len(h) != 1 || h[0].Round != 1 {
		t.Fatalf("History = %+v", h)
	}
	if h := st.History(ipaddr.MustParseAddr("9.9.9.9")); h != nil {
		t.Fatalf("History of unseen IP = %+v", h)
	}
}

// TestFileBackendReadOnly: the lazy backend rejects writes, at both
// the backend and the Store-frontend layers.
func TestFileBackendReadOnly(t *testing.T) {
	path, _ := buildSaved(t)
	st, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fb := st.Backend().(*FileBackend)
	if err := fb.Append(RoundMeta{Index: 3}, nil); err == nil {
		t.Error("Append on read-only backend succeeded")
	}
	if err := fb.Rewrite(0, RoundMeta{Index: 0}, nil); err == nil {
		t.Error("Rewrite on read-only backend succeeded")
	}
	if _, err := st.BeginRound(10); err != nil {
		t.Fatal(err)
	}
	if err := st.EndRound(); err == nil {
		t.Error("EndRound persisted a round into a read-only backend")
	}
	if err := st.UpdateRounds(func(r *Round) bool { return true }); err == nil {
		t.Error("UpdateRounds rewrote a read-only backend")
	}
}

// TestOpenFileCorrupt: truncated and mangled save files must surface
// ErrCorrupt from open — never a panic, never a partial store.
func TestOpenFileCorrupt(t *testing.T) {
	path, _ := buildSaved(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(t *testing.T, b []byte) string {
		p := filepath.Join(t.TempDir(), "bad.gob")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := map[string][]byte{
		"empty":             {},
		"bad magic":         []byte("NOTASTORE-------"),
		"magic only":        []byte(saveMagic),
		"mid header":        data[:len(saveMagic)+3],
		"mid frame":         data[:len(data)/2],
		"last byte missing": data[:len(data)-1],
		"trailing garbage":  append(append([]byte{}, data...), 'x'),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := OpenFileBackend(write(t, b)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("OpenFileBackend = %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestLoadCorrupt: the eager loader reports the same typed error on
// the same damage.
func TestLoadCorrupt(t *testing.T) {
	path, _ := buildSaved(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOTASTORE-------"),
		"magic only":   []byte(saveMagic),
		"mid frame":    data[:len(data)/2],
		"byte flipped": flip(data, len(data)/2),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load = %v, want ErrCorrupt", err)
			}
		})
	}
	// The untruncated original still loads.
	st, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if st.NumRounds() != 3 {
		t.Fatalf("NumRounds = %d", st.NumRounds())
	}
}

func flip(data []byte, i int) []byte {
	out := append([]byte{}, data...)
	out[i] ^= 0x20
	return out
}

// TestUpdateRounds: mutations persist only through UpdateRounds, and
// they change the digest.
func TestUpdateRounds(t *testing.T) {
	_, s := buildSaved(t)
	before, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	err = s.UpdateRounds(func(r *Round) bool {
		if r.Index != 1 {
			return false
		}
		r.Each(func(rec *Record) bool {
			rec.VPC = true
			return true
		})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	after, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("UpdateRounds left the digest unchanged")
	}
	if rec := s.Round(1).Get(ipaddr.MustParseAddr("10.1.0.2")); rec == nil || !rec.VPC {
		t.Fatalf("mutation not visible: %+v", rec)
	}
	if rec := s.Round(0).Get(ipaddr.MustParseAddr("10.0.0.2")); rec == nil || rec.VPC {
		t.Fatalf("unchanged round mutated: %+v", rec)
	}
}

// TestEachRound streams rounds in order and honors early stop.
func TestEachRound(t *testing.T) {
	_, s := buildSaved(t)
	var seen []int
	s.EachRound(func(r *Round) bool {
		seen = append(seen, r.Index)
		return len(seen) < 2
	})
	if len(seen) != 2 || seen[0] != 0 || seen[1] != 1 {
		t.Fatalf("seen = %v", seen)
	}
}
