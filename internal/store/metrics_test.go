package store

import (
	"testing"

	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
)

func TestStoreMetrics(t *testing.T) {
	s := New("test")
	reg := metrics.NewRegistry()
	s.SetMetrics(reg)

	if _, err := s.BeginRound(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(&Record{IP: ipaddr.Addr(i), OpenPorts: PortHTTP, Body: "abcd"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if snap.Counters["store.records"] != 3 {
		t.Errorf("store.records = %d, want 3", snap.Counters["store.records"])
	}
	if snap.Counters["store.rounds"] != 1 {
		t.Errorf("store.rounds = %d, want 1", snap.Counters["store.rounds"])
	}
	// Bodies are dropped by default, so nothing is retained.
	if got := snap.Counters["store.body_bytes_retained"]; got != 0 {
		t.Errorf("store.body_bytes_retained = %d, want 0 without KeepBodies", got)
	}

	s.KeepBodies = true
	if _, err := s.BeginRound(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Record{IP: ipaddr.Addr(9), OpenPorts: PortHTTP, Body: "retained!"}); err != nil {
		t.Fatal(err)
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
	snap = reg.Snapshot()
	if got := snap.Counters["store.body_bytes_retained"]; got != int64(len("retained!")) {
		t.Errorf("store.body_bytes_retained = %d, want %d", got, len("retained!"))
	}
	if snap.Counters["store.rounds"] != 2 {
		t.Errorf("store.rounds = %d, want 2", snap.Counters["store.rounds"])
	}

	// Detaching stops accumulation without disturbing stored data.
	s.SetMetrics(nil)
	if _, err := s.BeginRound(2); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(&Record{IP: ipaddr.Addr(12), OpenPorts: PortHTTP}); err != nil {
		t.Fatal(err)
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["store.records"]; got != 4 {
		t.Errorf("records counter moved after detach: %d", got)
	}
	if s.NumRounds() != 3 {
		t.Errorf("rounds stored = %d", s.NumRounds())
	}
}
