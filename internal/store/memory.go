package store

import (
	"fmt"

	"whowas/internal/ipaddr"
)

// memBackend is the default Backend: finalized rounds held as live
// slices plus a per-round IP map for History. It retains every record
// for the life of the store — the layout the analysis engines grew up
// on — so memory stays proportional to the whole campaign; campaigns
// that cannot afford that use the columnar backend instead.
type memBackend struct {
	rounds []memRound
}

type memRound struct {
	meta RoundMeta
	recs []*Record
	byIP map[ipaddr.Addr]*Record
}

// NewMemoryBackend returns the in-memory Backend New installs by
// default. Exported so conformance tests and benchmarks can construct
// both backends symmetrically.
func NewMemoryBackend() Backend { return &memBackend{} }

func indexRecords(recs []*Record) map[ipaddr.Addr]*Record {
	m := make(map[ipaddr.Addr]*Record, len(recs))
	for _, rec := range recs {
		m[rec.IP] = rec
	}
	return m
}

func (b *memBackend) Append(meta RoundMeta, recs []*Record) error {
	if meta.Index != len(b.rounds) {
		return fmt.Errorf("store: append round %d, have %d rounds", meta.Index, len(b.rounds))
	}
	b.rounds = append(b.rounds, memRound{meta: meta, recs: recs, byIP: indexRecords(recs)})
	return nil
}

func (b *memBackend) NumRounds() int { return len(b.rounds) }

func (b *memBackend) Meta(i int) (RoundMeta, error) {
	if i < 0 || i >= len(b.rounds) {
		return RoundMeta{}, fmt.Errorf("store: no round %d", i)
	}
	return b.rounds[i].meta, nil
}

func (b *memBackend) Records(i int) ([]*Record, error) {
	if i < 0 || i >= len(b.rounds) {
		return nil, fmt.Errorf("store: no round %d", i)
	}
	return b.rounds[i].recs, nil
}

func (b *memBackend) History(ip ipaddr.Addr) ([]*Record, error) {
	var out []*Record
	for i := range b.rounds {
		if rec := b.rounds[i].byIP[ip]; rec != nil {
			out = append(out, rec)
		}
	}
	return out, nil
}

func (b *memBackend) Rewrite(i int, meta RoundMeta, recs []*Record) error {
	if i < 0 || i >= len(b.rounds) {
		return fmt.Errorf("store: no round %d", i)
	}
	b.rounds[i] = memRound{meta: meta, recs: recs, byIP: indexRecords(recs)}
	return nil
}

func (b *memBackend) Close() error { return nil }
