// Package store is WhoWas's measurement database. The paper used MySQL
// with one table per round of scanning; this package provides the same
// organization as an embedded, concurrency-safe, gob-persistable store:
// rounds of per-IP records, plus the per-IP history lookup ("whowas
// 1.2.3.4") that gives the platform its name.
//
// Unresponsive IPs are not stored — a record's absence for a probed IP
// means the IP did not answer any probe that round, which keeps the
// store proportional to the responsive population rather than the
// address space.
package store

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/simhash"
	"whowas/internal/trace"
)

// Port bits for Record.OpenPorts.
const (
	PortSSH   = 1 << 0 // 22/tcp answered
	PortHTTP  = 1 << 1 // 80/tcp answered
	PortHTTPS = 1 << 2 // 443/tcp answered
)

// Record is one IP's observation in one round: probe results, the HTTP
// exchange, and the features extracted from the fetched page (§4's ten
// features plus links and tracker matches).
type Record struct {
	IP    ipaddr.Addr
	Round int // round index, 0-based
	Day   int // campaign day offset of the round

	OpenPorts uint8 // PortSSH|PortHTTP|PortHTTPS bits

	// HTTP exchange.
	Fetched      bool   // a fetch was attempted
	RobotsDenied bool   // robots.txt disallowed "/"; no page GET was made
	Scheme       string // "http" or "https"
	HTTPStatus   int    // 0 when no HTTP response was obtained
	FetchErr     string // error class when the exchange failed
	ContentType  string
	BodyLen      int    // feature 4: length of returned body
	Body         string // raw body; empty if the store drops bodies

	// Extracted features.
	PoweredBy   string              // feature 1: x-powered-by header
	Description string              // feature 2: meta description
	HeaderNames string              // feature 3: sorted header-name string, "#"-joined
	Title       string              // feature 5
	Template    string              // feature 6: meta generator (web template)
	Server      string              // feature 7: Server header
	Keywords    string              // feature 8
	AnalyticsID string              // feature 9: Google Analytics ID
	Simhash     simhash.Fingerprint // feature 10

	Links    []string // absolute URLs found in the page (malicious-URL analysis)
	Trackers []string // third-party tracker names matched (Table 20)
	Subpages int      // followed-link pages fetched (§9 deep-crawl extension)

	// Labels joined after collection.
	VPC     bool  // cloud-cartography label
	Cluster int64 // final cluster ID; 0 = unassigned
}

// Responsive reports whether the IP answered any probe (§4).
func (r *Record) Responsive() bool { return r.OpenPorts != 0 }

// WebOpen reports whether a web port answered.
func (r *Record) WebOpen() bool { return r.OpenPorts&(PortHTTP|PortHTTPS) != 0 }

// Available reports whether the HTTP(S) request for the URL succeeded
// (§4: unresponsive IPs are also unavailable).
func (r *Record) Available() bool { return r.HTTPStatus != 0 }

// Round is one round of scanning: records keyed by IP. While the
// round is open, records live in write shards (per-shard locks keep
// the hot Put path off one global mutex); finalize merges the shards
// into one IP-sorted index, so the persisted form — and therefore the
// store digest — is byte-identical whatever the shard count was.
type Round struct {
	Index  int
	Day    int
	Probed int64 // how many IPs were probed this round
	// Degraded marks a round that hit its campaign deadline and was
	// finalized with the records collected so far; its counts
	// undercount the true population and churn analyses should treat
	// it accordingly.
	Degraded bool
	records  map[ipaddr.Addr]*Record
	shards   []recordShard // open-round write path; nil once finalized
	sorted   []*Record     // built on Finalize, ascending by IP
	final    bool
}

// recordShard is one lock-striped slice of an open round's records.
type recordShard struct {
	mu      sync.Mutex
	records map[ipaddr.Addr]*Record
}

// shardFor picks a shard by splitmix64-mixed IP, so region-contiguous
// address blocks spread across shards instead of hammering one lock.
func (r *Round) shardFor(ip ipaddr.Addr) *recordShard {
	h := uint64(ip)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return &r.shards[h%uint64(len(r.shards))]
}

// Get returns the record for an IP, or nil (unresponsive). Intended
// for finalized rounds; on an open round it consults the shards.
func (r *Round) Get(ip ipaddr.Addr) *Record {
	if r.shards == nil {
		return r.records[ip]
	}
	sh := r.shardFor(ip)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.records[ip]
}

// Len returns the number of records (responsive IPs).
func (r *Round) Len() int {
	if r.shards == nil {
		return len(r.records)
	}
	n := 0
	for i := range r.shards {
		r.shards[i].mu.Lock()
		n += len(r.shards[i].records)
		r.shards[i].mu.Unlock()
	}
	return n
}

// Records returns the round's records sorted by IP. Finalize must have
// been called (Store.EndRound does).
func (r *Round) Records() []*Record {
	if !r.final {
		panic("store: Records called before round finalized")
	}
	return r.sorted
}

// Each visits records in IP order.
func (r *Round) Each(fn func(*Record) bool) {
	for _, rec := range r.Records() {
		if !fn(rec) {
			return
		}
	}
}

// finalize merges any write shards into the record index and sorts
// it. The merge is order-insensitive (records are keyed by IP and each
// IP is written by exactly one scan), so the sorted index — and the
// Save encoding derived from it — does not depend on the shard count.
func (r *Round) finalize() {
	if r.shards != nil {
		if r.records == nil {
			r.records = make(map[ipaddr.Addr]*Record, r.Len())
		}
		for i := range r.shards {
			for ip, rec := range r.shards[i].records {
				r.records[ip] = rec
			}
		}
		r.shards = nil
	}
	r.sorted = make([]*Record, 0, len(r.records))
	for _, rec := range r.records {
		r.sorted = append(r.sorted, rec)
	}
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].IP < r.sorted[j].IP })
	r.final = true
}

// Store holds all rounds of one cloud's campaign.
type Store struct {
	mu        sync.RWMutex
	CloudName string
	rounds    []*Round
	open      *Round
	// KeepBodies controls whether raw bodies survive EndRound. The
	// paper stored full content (900 GB); campaigns here extract
	// features first and drop bodies to keep memory proportional to
	// features, unless a caller opts in.
	KeepBodies bool
	// shardCount is how many write shards each new round gets
	// (SetShards); 0 and 1 both mean the single-map write path.
	shardCount int

	// Instrumentation handles (SetMetrics); nil (no-op) by default.
	mRecords  *metrics.Counter // records inserted
	mRounds   *metrics.Counter // rounds finalized
	mRetained *metrics.Counter // body bytes retained past EndRound
	tracer    *trace.Tracer    // SetTracer; nil no-ops
}

// SetMetrics attaches an instrumentation registry: store.records,
// store.rounds and store.body_bytes_retained. Call before the campaign
// starts; a nil registry detaches.
func (s *Store) SetMetrics(r *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mRecords = r.Counter("store.records")
	s.mRounds = r.Counter("store.rounds")
	s.mRetained = r.Counter("store.body_bytes_retained")
}

// SetTracer attaches a tracer: every EndRound emits a
// "store.finalize" span tagged with the round index so journal
// analysis can join it onto the round's span tree. A nil tracer
// detaches.
func (s *Store) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// New creates an empty store for a named cloud.
func New(cloudName string) *Store {
	return &Store{CloudName: cloudName}
}

// SetShards sets how many write shards future rounds stripe their
// records over. Concurrent Puts contend only within a shard, so a
// region-sharded pipeline scales its store writes with its lanes; the
// shard count never affects the finalized round or its digest (the
// shards are merged and IP-sorted at EndRound). Values below 1 mean 1.
// Call between rounds; the open round keeps its layout.
func (s *Store) SetShards(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	s.shardCount = n
}

// BeginRound opens a new round at the given campaign day. Only one
// round may be open at a time.
func (s *Store) BeginRound(day int) (*Round, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open != nil {
		return nil, fmt.Errorf("store: round %d still open", s.open.Index)
	}
	if len(s.rounds) > 0 && s.rounds[len(s.rounds)-1].Day >= day {
		return nil, fmt.Errorf("store: day %d not after previous round day %d", day, s.rounds[len(s.rounds)-1].Day)
	}
	n := s.shardCount
	if n < 1 {
		n = 1
	}
	r := &Round{
		Index:  len(s.rounds),
		Day:    day,
		shards: make([]recordShard, n),
	}
	for i := range r.shards {
		r.shards[i].records = make(map[ipaddr.Addr]*Record)
	}
	s.open = r
	return r, nil
}

// Put inserts a record into the open round. Safe for concurrent use by
// scanner/fetcher workers: the store mutex is taken in read mode (it
// excludes only Begin/End/AbortRound) and writes contend per shard.
func (s *Store) Put(rec *Record) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.open
	if r == nil {
		return fmt.Errorf("store: no open round")
	}
	rec.Round = r.Index
	rec.Day = r.Day
	sh := r.shardFor(rec.IP)
	sh.mu.Lock()
	sh.records[rec.IP] = rec
	sh.mu.Unlock()
	s.mRecords.Inc()
	return nil
}

// PutBatch records a batch of observations in the open round under a
// single round-lock acquisition. The coordinator folds a whole shard
// submission through it; per-record semantics are exactly Put's.
func (s *Store) PutBatch(recs []*Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.open
	if r == nil {
		return fmt.Errorf("store: no open round")
	}
	for _, rec := range recs {
		rec.Round = r.Index
		rec.Day = r.Day
		sh := r.shardFor(rec.IP)
		sh.mu.Lock()
		sh.records[rec.IP] = rec
		sh.mu.Unlock()
	}
	s.mRecords.Add(int64(len(recs)))
	return nil
}

// MarkDegraded flags the open round as degraded: the round exceeded
// its deadline and holds only the records collected before it fired.
// The flag survives EndRound and Save/Load.
func (s *Store) MarkDegraded() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open == nil {
		return fmt.Errorf("store: no open round")
	}
	s.open.Degraded = true
	return nil
}

// AddProbed counts probed IPs for the open round (the churn
// denominators of Figure 9 are fractions of all probed IPs).
func (s *Store) AddProbed(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open != nil {
		s.open.Probed += n
	}
}

// EndRound finalizes the open round: sorts the index and, unless
// KeepBodies is set, drops raw bodies (features were extracted by
// then).
func (s *Store) EndRound() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open == nil {
		return fmt.Errorf("store: no open round")
	}
	// The span is parentless (the store cannot see the round's root
	// span); the "round" attribute lets trace analysis join it.
	sp := s.tracer.Start("store.finalize", nil,
		trace.Int("round", s.open.Index),
		trace.Int("records", s.open.Len()),
		trace.Bool("degraded", s.open.Degraded),
	)
	s.open.finalize()
	var retained int64
	for _, rec := range s.open.sorted {
		if !s.KeepBodies {
			rec.Body = ""
		}
		retained += int64(len(rec.Body))
	}
	s.rounds = append(s.rounds, s.open)
	s.open = nil
	s.mRounds.Inc()
	s.mRetained.Add(retained)
	sp.End()
	return nil
}

// AbortRound discards the open round and everything it collected. The
// campaign loop calls it when a round fails hard (cancellation, a
// store error) so the store is left holding only finalized rounds —
// still saveable and digestable, and ready for a future BeginRound.
func (s *Store) AbortRound() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open == nil {
		return fmt.Errorf("store: no open round")
	}
	s.open = nil
	return nil
}

// Rounds returns the finalized rounds in order.
func (s *Store) Rounds() []*Round {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]*Round(nil), s.rounds...)
}

// NumRounds returns the finalized round count.
func (s *Store) NumRounds() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.rounds)
}

// Round returns round i, or nil.
func (s *Store) Round(i int) *Round {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= len(s.rounds) {
		return nil
	}
	return s.rounds[i]
}

// History returns every record for an IP across rounds, in round
// order — the platform's core "whowas this IP" lookup.
func (s *Store) History(ip ipaddr.Addr) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*Record
	for _, r := range s.rounds {
		if rec := r.records[ip]; rec != nil {
			out = append(out, rec)
		}
	}
	return out
}

// persisted is the gob wire form.
type persisted struct {
	CloudName string
	Rounds    []persistedRound
}

type persistedRound struct {
	Index    int
	Day      int
	Probed   int64
	Degraded bool
	Records  []Record
}

// Save writes the store (finalized rounds only) as gob.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	p := persisted{CloudName: s.CloudName}
	for _, r := range s.rounds {
		pr := persistedRound{Index: r.Index, Day: r.Day, Probed: r.Probed, Degraded: r.Degraded}
		for _, rec := range r.sorted {
			pr.Records = append(pr.Records, *rec)
		}
		p.Rounds = append(p.Rounds, pr)
	}
	return gob.NewEncoder(w).Encode(&p)
}

// Digest returns the hex SHA-256 of the store's Save encoding. Save
// writes rounds and records in sorted, deterministic order, so two
// campaigns that collected identical data digest identically — the
// byte-identity check behind the chaos determinism tests.
func (s *Store) Digest() (string, error) {
	h := sha256.New()
	if err := s.Save(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ExportJSON writes one round's records as a JSON array, one object
// per responsive IP — the interchange format for external analysis
// tooling (the role the paper's Python library played).
func (s *Store) ExportJSON(w io.Writer, round int) error {
	r := s.Round(round)
	if r == nil {
		return fmt.Errorf("store: no round %d", round)
	}
	enc := json.NewEncoder(w)
	type jsonRecord struct {
		IP          string `json:"ip"`
		Round       int    `json:"round"`
		Day         int    `json:"day"`
		OpenPorts   uint8  `json:"open_ports"`
		Status      int    `json:"status,omitempty"`
		Scheme      string `json:"scheme,omitempty"`
		ContentType string `json:"content_type,omitempty"`
		Title       string `json:"title,omitempty"`
		Server      string `json:"server,omitempty"`
		Template    string `json:"template,omitempty"`
		Keywords    string `json:"keywords,omitempty"`
		AnalyticsID string `json:"analytics_id,omitempty"`
		PoweredBy   string `json:"powered_by,omitempty"`
		Simhash     string `json:"simhash,omitempty"`
		BodyLen     int    `json:"body_len,omitempty"`
		Cluster     int64  `json:"cluster,omitempty"`
		VPC         bool   `json:"vpc,omitempty"`
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	var encodeErr error
	r.Each(func(rec *Record) bool {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				encodeErr = err
				return false
			}
		}
		first = false
		jr := jsonRecord{
			IP: rec.IP.String(), Round: rec.Round, Day: rec.Day,
			OpenPorts: rec.OpenPorts, Status: rec.HTTPStatus, Scheme: rec.Scheme,
			ContentType: rec.ContentType, Title: rec.Title, Server: rec.Server,
			Template: rec.Template, Keywords: rec.Keywords, AnalyticsID: rec.AnalyticsID,
			PoweredBy: rec.PoweredBy, BodyLen: rec.BodyLen, Cluster: rec.Cluster, VPC: rec.VPC,
		}
		if rec.Available() {
			jr.Simhash = rec.Simhash.String()
		}
		if err := enc.Encode(&jr); err != nil {
			encodeErr = err
			return false
		}
		return true
	})
	if encodeErr != nil {
		return encodeErr
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// Load reads a store written by Save.
func Load(rd io.Reader) (*Store, error) {
	var p persisted
	if err := gob.NewDecoder(rd).Decode(&p); err != nil {
		return nil, fmt.Errorf("store: decoding: %w", err)
	}
	s := New(p.CloudName)
	for _, pr := range p.Rounds {
		r := &Round{Index: pr.Index, Day: pr.Day, Probed: pr.Probed, Degraded: pr.Degraded, records: make(map[ipaddr.Addr]*Record, len(pr.Records))}
		for i := range pr.Records {
			rec := pr.Records[i]
			r.records[rec.IP] = &rec
		}
		r.finalize()
		s.rounds = append(s.rounds, r)
	}
	return s, nil
}
