// Package store is WhoWas's measurement database. The paper used MySQL
// with one table per round of scanning; this package provides the same
// organization as an embedded, concurrency-safe, persistable store:
// rounds of per-IP records, plus the per-IP history lookup ("whowas
// 1.2.3.4") that gives the platform its name.
//
// The Store type is a thin frontend: it owns the open round's
// lock-striped write path, finalization (merge, IP-sort, body drop),
// metrics and digests, and delegates finalized-round persistence to a
// Backend (backend.go). The default backend keeps everything in memory;
// internal/store/colstore persists append-only columnar segments so a
// campaign's memory stays bounded by one round, not the whole history.
// Save/Digest/ExportJSON/History are byte-identical whichever backend
// collected the data.
//
// Unresponsive IPs are not stored — a record's absence for a probed IP
// means the IP did not answer any probe that round, which keeps the
// store proportional to the responsive population rather than the
// address space.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"whowas/internal/ipaddr"
	"whowas/internal/metrics"
	"whowas/internal/simhash"
	"whowas/internal/trace"
)

// Port bits for Record.OpenPorts.
const (
	PortSSH   = 1 << 0 // 22/tcp answered
	PortHTTP  = 1 << 1 // 80/tcp answered
	PortHTTPS = 1 << 2 // 443/tcp answered
)

// Record is one IP's observation in one round: probe results, the HTTP
// exchange, and the features extracted from the fetched page (§4's ten
// features plus links and tracker matches).
// The json tags pin the coord submit-wire shape (a ShardResult carries
// records); Save/Digest use gob, which ignores tags, so the on-disk
// format and the digest invariant are untouched by them.
type Record struct {
	IP    ipaddr.Addr `json:"ip"`
	Round int         `json:"round"` // round index, 0-based
	Day   int         `json:"day"`   // campaign day offset of the round

	OpenPorts uint8 `json:"open_ports"` // PortSSH|PortHTTP|PortHTTPS bits

	// HTTP exchange.
	Fetched      bool   `json:"fetched"`       // a fetch was attempted
	RobotsDenied bool   `json:"robots_denied"` // robots.txt disallowed "/"; no page GET was made
	Scheme       string `json:"scheme"`        // "http" or "https"
	HTTPStatus   int    `json:"http_status"`   // 0 when no HTTP response was obtained
	FetchErr     string `json:"fetch_err"`     // error class when the exchange failed
	ContentType  string `json:"content_type"`
	BodyLen      int    `json:"body_len"` // feature 4: length of returned body
	Body         string `json:"body"`     // raw body; empty if the store drops bodies

	// Extracted features.
	PoweredBy   string              `json:"powered_by"`   // feature 1: x-powered-by header
	Description string              `json:"description"`  // feature 2: meta description
	HeaderNames string              `json:"header_names"` // feature 3: sorted header-name string, "#"-joined
	Title       string              `json:"title"`        // feature 5
	Template    string              `json:"template"`     // feature 6: meta generator (web template)
	Server      string              `json:"server"`       // feature 7: Server header
	Keywords    string              `json:"keywords"`     // feature 8
	AnalyticsID string              `json:"analytics_id"` // feature 9: Google Analytics ID
	Simhash     simhash.Fingerprint `json:"simhash"`      // feature 10

	Links    []string `json:"links"`    // absolute URLs found in the page (malicious-URL analysis)
	Trackers []string `json:"trackers"` // third-party tracker names matched (Table 20)
	Subpages int      `json:"subpages"` // followed-link pages fetched (§9 deep-crawl extension)

	// Labels joined after collection.
	VPC     bool  `json:"vpc"`     // cloud-cartography label
	Cluster int64 `json:"cluster"` // final cluster ID; 0 = unassigned
}

// Responsive reports whether the IP answered any probe (§4).
func (r *Record) Responsive() bool { return r.OpenPorts != 0 }

// WebOpen reports whether a web port answered.
func (r *Record) WebOpen() bool { return r.OpenPorts&(PortHTTP|PortHTTPS) != 0 }

// Available reports whether the HTTP(S) request for the URL succeeded
// (§4: unresponsive IPs are also unavailable).
func (r *Record) Available() bool { return r.HTTPStatus != 0 }

// Round is one round of scanning: records keyed by IP. While the
// round is open, records live in write shards (per-shard locks keep
// the hot Put path off one global mutex); finalize merges the shards
// into one IP-sorted index, so the persisted form — and therefore the
// store digest — is byte-identical whatever the shard count was.
// Finalized rounds handed out by Store.Round/Rounds/EachRound are
// read-mostly views over the backend's records; mutations to their
// records persist only through Store.UpdateRounds.
type Round struct {
	Index  int
	Day    int
	Probed int64 // how many IPs were probed this round
	// Degraded marks a round that hit its campaign deadline and was
	// finalized with the records collected so far; its counts
	// undercount the true population and churn analyses should treat
	// it accordingly.
	Degraded bool
	records  map[ipaddr.Addr]*Record
	shards   []recordShard // open-round write path; nil once finalized
	sorted   []*Record     // built on finalize, ascending by IP
	final    bool
}

// recordShard is one lock-striped slice of an open round's records.
type recordShard struct {
	mu      sync.Mutex
	records map[ipaddr.Addr]*Record
}

// shardFor picks a shard by splitmix64-mixed IP, so region-contiguous
// address blocks spread across shards instead of hammering one lock.
func (r *Round) shardFor(ip ipaddr.Addr) *recordShard {
	h := uint64(ip)
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return &r.shards[h%uint64(len(r.shards))]
}

// Get returns the record for an IP, or nil (unresponsive). On an open
// round it consults the write shards; on a finalized round it binary
// searches the IP-sorted index.
func (r *Round) Get(ip ipaddr.Addr) *Record {
	if r.shards != nil {
		sh := r.shardFor(ip)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		return sh.records[ip]
	}
	if r.records != nil {
		return r.records[ip]
	}
	i := sort.Search(len(r.sorted), func(i int) bool { return r.sorted[i].IP >= ip })
	if i < len(r.sorted) && r.sorted[i].IP == ip {
		return r.sorted[i]
	}
	return nil
}

// Len returns the number of records (responsive IPs).
func (r *Round) Len() int {
	if r.final {
		return len(r.sorted)
	}
	if r.shards == nil {
		return len(r.records)
	}
	n := 0
	for i := range r.shards {
		r.shards[i].mu.Lock()
		n += len(r.shards[i].records)
		r.shards[i].mu.Unlock()
	}
	return n
}

// Records returns the round's records sorted by IP. Finalize must have
// been called (Store.EndRound does).
func (r *Round) Records() []*Record {
	if !r.final {
		panic("store: Records called before round finalized")
	}
	return r.sorted
}

// Each visits records in IP order.
func (r *Round) Each(fn func(*Record) bool) {
	for _, rec := range r.Records() {
		if !fn(rec) {
			return
		}
	}
}

// finalize merges any write shards into the record index and sorts
// it. The merge is order-insensitive (records are keyed by IP and each
// IP is written by exactly one scan), so the sorted index — and the
// Save encoding derived from it — does not depend on the shard count.
func (r *Round) finalize() {
	if r.shards != nil {
		if r.records == nil {
			r.records = make(map[ipaddr.Addr]*Record, r.Len())
		}
		for i := range r.shards {
			for ip, rec := range r.shards[i].records {
				r.records[ip] = rec
			}
		}
		r.shards = nil
	}
	r.sorted = make([]*Record, 0, len(r.records))
	for _, rec := range r.records {
		r.sorted = append(r.sorted, rec)
	}
	sort.Slice(r.sorted, func(i, j int) bool { return r.sorted[i].IP < r.sorted[j].IP })
	r.final = true
}

// meta extracts the round's Backend metadata.
func (r *Round) meta() RoundMeta {
	return RoundMeta{Index: r.Index, Day: r.Day, Probed: r.Probed, Degraded: r.Degraded, Records: len(r.sorted)}
}

// roundOf builds the frontend view of a persisted round.
func roundOf(meta RoundMeta, recs []*Record) *Round {
	return &Round{Index: meta.Index, Day: meta.Day, Probed: meta.Probed, Degraded: meta.Degraded, sorted: recs, final: true}
}

// Store holds all rounds of one cloud's campaign: the open round's
// write path in front, a Backend for the finalized history behind.
type Store struct {
	mu        sync.RWMutex
	CloudName string
	backend   Backend
	open      *Round
	// KeepBodies controls whether raw bodies survive EndRound. The
	// paper stored full content (900 GB); campaigns here extract
	// features first and drop bodies to keep memory proportional to
	// features, unless a caller opts in.
	KeepBodies bool
	// shardCount is how many write shards each new round gets
	// (SetShards); 0 and 1 both mean the single-map write path.
	shardCount int

	// Instrumentation handles (SetMetrics); nil (no-op) by default.
	mRecords  *metrics.Counter // records inserted
	mRounds   *metrics.Counter // rounds finalized
	mRetained *metrics.Counter // body bytes retained past EndRound
	tracer    *trace.Tracer    // SetTracer; nil no-ops
}

// SetMetrics attaches an instrumentation registry: store.records,
// store.rounds and store.body_bytes_retained. Call before the campaign
// starts; a nil registry detaches.
func (s *Store) SetMetrics(r *metrics.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mRecords = r.Counter("store.records")
	s.mRounds = r.Counter("store.rounds")
	s.mRetained = r.Counter("store.body_bytes_retained")
}

// SetTracer attaches a tracer: every EndRound emits a
// "store.finalize" span tagged with the round index so journal
// analysis can join it onto the round's span tree. A nil tracer
// detaches.
func (s *Store) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// New creates an empty store for a named cloud over the default
// in-memory backend.
func New(cloudName string) *Store {
	return NewWithBackend(cloudName, NewMemoryBackend())
}

// NewWithBackend creates a store over an explicit backend. The backend
// may already hold rounds (a reopened columnar directory, a saved
// snapshot): the store picks up where it left off.
func NewWithBackend(cloudName string, b Backend) *Store {
	return &Store{CloudName: cloudName, backend: b}
}

// Backend returns the store's backend (for stats and tests).
func (s *Store) Backend() Backend {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.backend
}

// Close releases the backend's resources. A store with an open round
// cannot be closed (End or Abort it first).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open != nil {
		return fmt.Errorf("store: close with round %d open", s.open.Index)
	}
	return s.backend.Close()
}

// SetShards sets how many write shards future rounds stripe their
// records over. Concurrent Puts contend only within a shard, so a
// region-sharded pipeline scales its store writes with its lanes; the
// shard count never affects the finalized round or its digest (the
// shards are merged and IP-sorted at EndRound). Values below 1 mean 1.
// Call between rounds; the open round keeps its layout.
func (s *Store) SetShards(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	s.shardCount = n
}

// BeginRound opens a new round at the given campaign day. Only one
// round may be open at a time. The returned handle stays readable
// after EndRound (it keeps the finalized index) — the round loop reads
// its counters back.
func (s *Store) BeginRound(day int) (*Round, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open != nil {
		return nil, fmt.Errorf("store: round %d still open", s.open.Index)
	}
	if n := s.backend.NumRounds(); n > 0 {
		last, err := s.backend.Meta(n - 1)
		if err != nil {
			return nil, err
		}
		if last.Day >= day {
			return nil, fmt.Errorf("store: day %d not after previous round day %d", day, last.Day)
		}
	}
	n := s.shardCount
	if n < 1 {
		n = 1
	}
	r := &Round{
		Index:  s.backend.NumRounds(),
		Day:    day,
		shards: make([]recordShard, n),
	}
	for i := range r.shards {
		r.shards[i].records = make(map[ipaddr.Addr]*Record)
	}
	s.open = r
	return r, nil
}

// Put inserts a record into the open round. Safe for concurrent use by
// scanner/fetcher workers: the store mutex is taken in read mode (it
// excludes only Begin/End/AbortRound) and writes contend per shard.
func (s *Store) Put(rec *Record) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.open
	if r == nil {
		return fmt.Errorf("store: no open round")
	}
	rec.Round = r.Index
	rec.Day = r.Day
	sh := r.shardFor(rec.IP)
	sh.mu.Lock()
	sh.records[rec.IP] = rec
	sh.mu.Unlock()
	s.mRecords.Inc()
	return nil
}

// PutBatch records a batch of observations in the open round under a
// single round-lock acquisition. The coordinator folds a whole shard
// submission through it; per-record semantics are exactly Put's.
func (s *Store) PutBatch(recs []*Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	r := s.open
	if r == nil {
		return fmt.Errorf("store: no open round")
	}
	for _, rec := range recs {
		rec.Round = r.Index
		rec.Day = r.Day
		sh := r.shardFor(rec.IP)
		sh.mu.Lock()
		sh.records[rec.IP] = rec
		sh.mu.Unlock()
	}
	s.mRecords.Add(int64(len(recs)))
	return nil
}

// MarkDegraded flags the open round as degraded: the round exceeded
// its deadline and holds only the records collected before it fired.
// The flag survives EndRound and Save/Load.
func (s *Store) MarkDegraded() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open == nil {
		return fmt.Errorf("store: no open round")
	}
	s.open.Degraded = true
	return nil
}

// AddProbed counts probed IPs for the open round (the churn
// denominators of Figure 9 are fractions of all probed IPs).
func (s *Store) AddProbed(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open != nil {
		s.open.Probed += n
	}
}

// EndRound finalizes the open round — merge the write shards, sort by
// IP, drop raw bodies unless KeepBodies — and appends it to the
// backend. On a backend failure the round is discarded (the store
// never wedges on a half-persisted round) and the error returned.
func (s *Store) EndRound() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open == nil {
		return fmt.Errorf("store: no open round")
	}
	// The span is parentless (the store cannot see the round's root
	// span); the "round" attribute lets trace analysis join it.
	sp := s.tracer.Start("store.finalize", nil,
		trace.Int("round", s.open.Index),
		trace.Int("records", s.open.Len()),
		trace.Bool("degraded", s.open.Degraded),
	)
	s.open.finalize()
	var retained int64
	for _, rec := range s.open.sorted {
		if !s.KeepBodies {
			rec.Body = ""
		}
		retained += int64(len(rec.Body))
	}
	r := s.open
	s.open = nil
	if err := s.backend.Append(r.meta(), r.sorted); err != nil {
		sp.End()
		return fmt.Errorf("store: persisting round %d: %w", r.Index, err)
	}
	s.mRounds.Inc()
	s.mRetained.Add(retained)
	sp.End()
	return nil
}

// AbortRound discards the open round and everything it collected. The
// campaign loop calls it when a round fails hard (cancellation, a
// store error) so the store is left holding only finalized rounds —
// still saveable and digestable, and ready for a future BeginRound.
func (s *Store) AbortRound() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.open == nil {
		return fmt.Errorf("store: no open round")
	}
	s.open = nil
	return nil
}

// roundAt builds the frontend view of finalized round i. The caller
// holds s.mu (read or write). A backend read failure here is a broken
// integrity contract (backends validate at open), not an I/O condition
// — it panics rather than forcing an error return onto every
// read-path signature.
func (s *Store) roundAt(i int) *Round {
	meta, err := s.backend.Meta(i)
	if err == nil {
		var recs []*Record
		recs, err = s.backend.Records(i)
		if err == nil {
			return roundOf(meta, recs)
		}
	}
	panic(fmt.Sprintf("store: reading round %d: %v (backend integrity contract violated)", i, err))
}

// Rounds returns views of the finalized rounds in order. On a lazy
// backend this decodes — and keeps referenced — every round; prefer
// EachRound for single-pass analyses.
func (s *Store) Rounds() []*Round {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Round, s.backend.NumRounds())
	for i := range out {
		out[i] = s.roundAt(i)
	}
	return out
}

// NumRounds returns the finalized round count.
func (s *Store) NumRounds() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.backend.NumRounds()
}

// Round returns a view of round i, or nil.
func (s *Store) Round(i int) *Round {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if i < 0 || i >= s.backend.NumRounds() {
		return nil
	}
	return s.roundAt(i)
}

// EachRound streams the finalized rounds in order, one at a time: on a
// lazy backend at most one round is loaded per iteration, so a
// full-campaign fold runs in one round's memory. fn returns false to
// stop. fn must not retain the round (or its records) across
// iterations if it wants that bound to hold.
func (s *Store) EachRound(fn func(*Round) bool) {
	for i := 0; ; i++ {
		s.mu.RLock()
		if i >= s.backend.NumRounds() {
			s.mu.RUnlock()
			return
		}
		r := s.roundAt(i)
		s.mu.RUnlock()
		if !fn(r) {
			return
		}
	}
}

// UpdateRounds applies fn to each finalized round in order and
// persists the rounds fn reports changed (return true) back to the
// backend. It is the one sanctioned way to mutate stored records —
// the analysis joins (cartography's VPC labels, clustering's final
// IDs) write back through it; mutating records obtained from
// Rounds/Round/EachRound is lost on a lazy backend. fn runs under the
// store's write lock and must not call other Store methods.
func (s *Store) UpdateRounds(fn func(*Round) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.backend.NumRounds()
	for i := 0; i < n; i++ {
		r := s.roundAt(i)
		if !fn(r) {
			continue
		}
		if err := s.backend.Rewrite(i, r.meta(), r.sorted); err != nil {
			return fmt.Errorf("store: rewriting round %d: %w", i, err)
		}
	}
	return nil
}

// History returns every record for an IP across rounds, in round
// order — the platform's core "whowas this IP" lookup.
func (s *Store) History(ip ipaddr.Addr) []*Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out, err := s.backend.History(ip)
	if err != nil {
		panic(fmt.Sprintf("store: history of %s: %v (backend integrity contract violated)", ip, err))
	}
	return out
}

// The framed save format: a magic string, then length-prefixed frames,
// each an independent gob stream — a header frame, then a meta frame
// and a records frame per round. Independent frames let a reader skip
// straight to one round's records without decoding the rest (the
// FileBackend does), while the encoding stays fully deterministic:
// identical data produces identical bytes, whatever backend or shard
// count collected it.
const saveMagic = "WHOWAS2\n"

// saveVersion is the header's format version.
const saveVersion = 2

// maxFrameLen bounds a frame read so a corrupt length prefix cannot
// drive an allocation by itself.
const maxFrameLen = 1 << 31

// saveHeader is the first frame.
type saveHeader struct {
	Version   int
	CloudName string
	Rounds    int
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// gobFrame encodes v as a standalone gob stream and frames it.
func gobFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return err
	}
	return writeFrame(w, buf.Bytes())
}

// readFrameLen reads a frame's length prefix. Every frame in the
// format is mandatory — the header fixes the round count — so running
// out of input here is always truncation, reported as ErrCorrupt.
func readFrameLen(r io.Reader) (int, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: truncated frame length: %v", ErrCorrupt, err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n >= maxFrameLen {
		return 0, fmt.Errorf("%w: frame length %d", ErrCorrupt, n)
	}
	return int(n), nil
}

// readFrame reads one full frame.
func readFrame(r io.Reader) ([]byte, error) {
	n, err := readFrameLen(r)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: truncated frame: %v", ErrCorrupt, err)
	}
	return buf, nil
}

// gobUnframe decodes one frame into v.
func gobUnframe(r io.Reader, v any) error {
	buf, err := readFrame(r)
	if err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(v); err != nil {
		return fmt.Errorf("%w: decoding frame: %v", ErrCorrupt, err)
	}
	return nil
}

// Save writes the store (finalized rounds only) in the framed format.
// Rounds are streamed from the backend one at a time, so saving a
// columnar store never materializes the whole campaign.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.backend.NumRounds()
	if _, err := io.WriteString(w, saveMagic); err != nil {
		return err
	}
	if err := gobFrame(w, &saveHeader{Version: saveVersion, CloudName: s.CloudName, Rounds: n}); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		meta, err := s.backend.Meta(i)
		if err != nil {
			return err
		}
		recs, err := s.backend.Records(i)
		if err != nil {
			return err
		}
		if err := gobFrame(w, &meta); err != nil {
			return err
		}
		flat := make([]Record, len(recs))
		for j, rec := range recs {
			flat[j] = *rec
		}
		if err := gobFrame(w, flat); err != nil {
			return err
		}
	}
	return nil
}

// Digest returns the hex SHA-256 of the store's Save encoding. Save
// writes rounds and records in sorted, deterministic order, so two
// campaigns that collected identical data digest identically —
// whatever the shard count, worker count, transport, or storage
// backend. This byte-identity is the check behind every chaos and
// conformance gate.
func (s *Store) Digest() (string, error) {
	h := sha256.New()
	if err := s.Save(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ExportJSON writes one round's records as a JSON array, one object
// per responsive IP — the interchange format for external analysis
// tooling (the role the paper's Python library played). Only the
// requested round is loaded from the backend.
func (s *Store) ExportJSON(w io.Writer, round int) error {
	r := s.Round(round)
	if r == nil {
		return fmt.Errorf("store: no round %d", round)
	}
	enc := json.NewEncoder(w)
	type jsonRecord struct {
		IP          string `json:"ip"`
		Round       int    `json:"round"`
		Day         int    `json:"day"`
		OpenPorts   uint8  `json:"open_ports"`
		Status      int    `json:"status,omitempty"`
		Scheme      string `json:"scheme,omitempty"`
		ContentType string `json:"content_type,omitempty"`
		Title       string `json:"title,omitempty"`
		Server      string `json:"server,omitempty"`
		Template    string `json:"template,omitempty"`
		Keywords    string `json:"keywords,omitempty"`
		AnalyticsID string `json:"analytics_id,omitempty"`
		PoweredBy   string `json:"powered_by,omitempty"`
		Simhash     string `json:"simhash,omitempty"`
		BodyLen     int    `json:"body_len,omitempty"`
		Cluster     int64  `json:"cluster,omitempty"`
		VPC         bool   `json:"vpc,omitempty"`
	}
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	var encodeErr error
	r.Each(func(rec *Record) bool {
		if !first {
			if _, err := io.WriteString(w, ","); err != nil {
				encodeErr = err
				return false
			}
		}
		first = false
		jr := jsonRecord{
			IP: rec.IP.String(), Round: rec.Round, Day: rec.Day,
			OpenPorts: rec.OpenPorts, Status: rec.HTTPStatus, Scheme: rec.Scheme,
			ContentType: rec.ContentType, Title: rec.Title, Server: rec.Server,
			Template: rec.Template, Keywords: rec.Keywords, AnalyticsID: rec.AnalyticsID,
			PoweredBy: rec.PoweredBy, BodyLen: rec.BodyLen, Cluster: rec.Cluster, VPC: rec.VPC,
		}
		if rec.Available() {
			jr.Simhash = rec.Simhash.String()
		}
		if err := enc.Encode(&jr); err != nil {
			encodeErr = err
			return false
		}
		return true
	})
	if encodeErr != nil {
		return encodeErr
	}
	_, err := io.WriteString(w, "]\n")
	return err
}

// readMagic consumes and validates the save magic.
func readMagic(r io.Reader) error {
	var m [len(saveMagic)]byte
	if _, err := io.ReadFull(r, m[:]); err != nil {
		return fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(m[:]) != saveMagic {
		return fmt.Errorf("%w: not a WhoWas store (bad magic %q)", ErrCorrupt, m[:])
	}
	return nil
}

// readHeader reads and validates the header frame.
func readHeader(r io.Reader) (saveHeader, error) {
	var h saveHeader
	if err := gobUnframe(r, &h); err != nil {
		return h, err
	}
	if h.Version != saveVersion {
		return h, fmt.Errorf("%w: unsupported store version %d", ErrCorrupt, h.Version)
	}
	if h.Rounds < 0 {
		return h, fmt.Errorf("%w: negative round count %d", ErrCorrupt, h.Rounds)
	}
	return h, nil
}

// decodeRecordsFrame decodes one round's records frame into pointers,
// stamping Round/Day from the meta.
func decodeRecordsFrame(buf []byte, meta RoundMeta) ([]*Record, error) {
	var flat []Record
	if err := gob.NewDecoder(bytes.NewReader(buf)).Decode(&flat); err != nil {
		return nil, fmt.Errorf("%w: decoding round %d records: %v", ErrCorrupt, meta.Index, err)
	}
	if len(flat) != meta.Records {
		return nil, fmt.Errorf("%w: round %d holds %d records, meta says %d", ErrCorrupt, meta.Index, len(flat), meta.Records)
	}
	recs := make([]*Record, len(flat))
	for i := range flat {
		recs[i] = &flat[i]
	}
	return recs, nil
}

// Load reads a store written by Save into memory. Truncated or mangled
// input returns an error wrapping ErrCorrupt — never a panic. For
// lazy, bounded-memory access to a saved file use OpenFileBackend
// instead.
func Load(rd io.Reader) (*Store, error) {
	if err := readMagic(rd); err != nil {
		return nil, err
	}
	h, err := readHeader(rd)
	if err != nil {
		return nil, err
	}
	b := &memBackend{}
	for i := 0; i < h.Rounds; i++ {
		var meta RoundMeta
		if err := gobUnframe(rd, &meta); err != nil {
			return nil, err
		}
		if meta.Index != i {
			return nil, fmt.Errorf("%w: round %d carries index %d", ErrCorrupt, i, meta.Index)
		}
		buf, err := readFrame(rd)
		if err != nil {
			return nil, err
		}
		recs, err := decodeRecordsFrame(buf, meta)
		if err != nil {
			return nil, err
		}
		if err := b.Append(meta, recs); err != nil {
			return nil, err
		}
	}
	return NewWithBackend(h.CloudName, b), nil
}
