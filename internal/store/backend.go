// The storage boundary: the Store frontend owns the open-round
// lifecycle (sharded writes, finalize, metrics, digests) and delegates
// persistence of finalized rounds to a Backend. Two implementations
// exist: the in-memory maps this package grew up with (memory.go, the
// default) and the on-disk columnar engine (internal/store/colstore)
// that makes 1:1-scale campaigns fit in bounded memory.
package store

import (
	"errors"

	"whowas/internal/ipaddr"
)

// ErrCorrupt tags storage-integrity failures: a truncated or mangled
// gob snapshot, a torn columnar segment, a CRC mismatch. Callers test
// with errors.Is(err, store.ErrCorrupt); no integrity failure ever
// panics.
var ErrCorrupt = errors.New("store: corrupt data")

// RoundMeta is a finalized round's identity and counters — everything
// about a round except its records.
type RoundMeta struct {
	Index    int   // round index, 0-based, dense
	Day      int   // campaign day offset
	Probed   int64 // IPs probed this round
	Degraded bool  // round finalized on its deadline with partial records
	Records  int   // record count (responsive IPs)
}

// Backend persists finalized rounds. The Store frontend is the only
// writer and serializes Append/Rewrite calls; read methods must be safe
// for concurrent use (the frontend calls them under a read lock from
// many goroutines).
//
// Integrity contract: a Backend validates its data when it is opened
// (returning an error wrapping ErrCorrupt on truncated or mangled
// input) and thereafter guarantees reads succeed. The frontend treats a
// post-open read failure as a programming error, not an I/O condition.
//
// Byte-identity contract: Records(i) must return records equal
// (gob-byte-for-byte, field by field) to the slice Append received —
// this is what makes Save/Digest/ExportJSON/History identical whichever
// backend collected the campaign.
type Backend interface {
	// Append persists a finalized round. meta.Index is always the
	// current NumRounds (rounds are dense and appended in order), and
	// recs is sorted ascending by IP.
	Append(meta RoundMeta, recs []*Record) error
	// NumRounds returns the number of persisted rounds.
	NumRounds() int
	// Meta returns round i's metadata.
	Meta(i int) (RoundMeta, error)
	// Records returns round i's records, sorted ascending by IP. Lazy
	// backends decode on demand; callers must not retain the slice
	// across rounds when streaming (Store.EachRound does not).
	Records(i int) ([]*Record, error)
	// History returns every record for an IP across rounds, in round
	// order; nil when the IP was never responsive.
	History(ip ipaddr.Addr) ([]*Record, error)
	// Rewrite replaces round i in place. The analysis joins
	// (cartography VPC labels, final cluster IDs) write back through it
	// via Store.UpdateRounds; recs is the full record slice, still
	// sorted by IP.
	Rewrite(i int, meta RoundMeta, recs []*Record) error
	// Close releases backend resources. The store is unusable after.
	Close() error
}
