package store

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"whowas/internal/ipaddr"
)

// FileBackend is a lazy, read-only Backend over a snapshot written by
// Save: opening it scans the frame structure and decodes only the
// header and per-round metadata, recording each records frame's file
// offset; a round's records are decoded on demand and not retained.
// whowas-query opens stores through it so single-round commands
// (export, summary's streaming folds) never materialize the whole
// campaign — the Stats counters let tests pin that down.
type FileBackend struct {
	f         *os.File
	cloudName string
	metas     []RoundMeta
	offsets   []int64 // records frame payload offset per round
	lengths   []int   // records frame payload length per round

	mu     sync.Mutex // serializes reads of the shared file handle
	closed bool

	roundsDecoded atomic.Int64
}

// FileStats counts a FileBackend's lazy-decode activity.
type FileStats struct {
	// RoundsDecoded is how many record frames were decoded since open.
	// A single-round export decodes exactly one, however many rounds
	// the file holds; nothing decoded is retained, so peak residency is
	// the caller's current round.
	RoundsDecoded int64
}

// OpenFileBackend opens a saved store file for lazy read-only access.
// Truncated or mangled files return an error wrapping ErrCorrupt.
func OpenFileBackend(path string) (*FileBackend, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	b, err := scanFile(f)
	if err != nil {
		// The scan owns the handle from here; don't leak it on a
		// corrupt file.
		_ = f.Close()
		return nil, err
	}
	return b, nil
}

// OpenFile opens a saved store file as a Store over a FileBackend —
// the streaming counterpart of Load.
func OpenFile(path string) (*Store, error) {
	b, err := OpenFileBackend(path)
	if err != nil {
		return nil, err
	}
	return NewWithBackend(b.CloudName(), b), nil
}

// scanFile walks the frame structure, validating lengths and decoding
// header and metas but skipping every records frame.
func scanFile(f *os.File) (*FileBackend, error) {
	if err := readMagic(f); err != nil {
		return nil, err
	}
	h, err := readHeader(f)
	if err != nil {
		return nil, err
	}
	b := &FileBackend{f: f, cloudName: h.CloudName}
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, err
	}
	for i := 0; i < h.Rounds; i++ {
		var meta RoundMeta
		if err := gobUnframe(f, &meta); err != nil {
			return nil, err
		}
		if meta.Index != i {
			return nil, fmt.Errorf("%w: round %d carries index %d", ErrCorrupt, i, meta.Index)
		}
		pos, err = f.Seek(0, io.SeekCurrent)
		if err != nil {
			return nil, err
		}
		n, err := readFrameLen(f)
		if err != nil {
			return nil, fmt.Errorf("%w: round %d records frame: %v", ErrCorrupt, i, err)
		}
		end, err := f.Seek(int64(n), io.SeekCurrent)
		if err != nil {
			return nil, err
		}
		if end != pos+4+int64(n) {
			return nil, fmt.Errorf("%w: round %d records frame overruns the file", ErrCorrupt, i)
		}
		b.metas = append(b.metas, meta)
		b.offsets = append(b.offsets, pos+4)
		b.lengths = append(b.lengths, n)
	}
	// The seek past the last frame succeeds even beyond EOF; prove the
	// payload is really there, and that nothing trails it.
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, err
	}
	if n := len(b.offsets); n > 0 {
		if want := b.offsets[n-1] + int64(b.lengths[n-1]); size != want {
			return nil, fmt.Errorf("%w: file is %d bytes, frames claim %d", ErrCorrupt, size, want)
		}
	}
	return b, nil
}

// Stats returns the decode counters.
func (b *FileBackend) Stats() FileStats {
	return FileStats{RoundsDecoded: b.roundsDecoded.Load()}
}

// CloudName returns the saved store's cloud name.
func (b *FileBackend) CloudName() string { return b.cloudName }

// Append is rejected: the backend is read-only.
func (b *FileBackend) Append(meta RoundMeta, recs []*Record) error {
	return fmt.Errorf("store: file backend is read-only")
}

// Rewrite is rejected: the backend is read-only.
func (b *FileBackend) Rewrite(i int, meta RoundMeta, recs []*Record) error {
	return fmt.Errorf("store: file backend is read-only")
}

func (b *FileBackend) NumRounds() int { return len(b.metas) }

func (b *FileBackend) Meta(i int) (RoundMeta, error) {
	if i < 0 || i >= len(b.metas) {
		return RoundMeta{}, fmt.Errorf("store: no round %d", i)
	}
	return b.metas[i], nil
}

func (b *FileBackend) Records(i int) ([]*Record, error) {
	if i < 0 || i >= len(b.metas) {
		return nil, fmt.Errorf("store: no round %d", i)
	}
	buf := make([]byte, b.lengths[i])
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("store: file backend closed")
	}
	_, err := b.f.ReadAt(buf, b.offsets[i])
	b.mu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("store: reading round %d: %w", i, err)
	}
	recs, err := decodeRecordsFrame(buf, b.metas[i])
	if err != nil {
		return nil, err
	}
	b.roundsDecoded.Add(1)
	return recs, nil
}

func (b *FileBackend) History(ip ipaddr.Addr) ([]*Record, error) {
	var out []*Record
	for i := range b.metas {
		recs, err := b.Records(i)
		if err != nil {
			return nil, err
		}
		if rec := searchIP(recs, ip); rec != nil {
			out = append(out, rec)
		}
	}
	return out, nil
}

// searchIP binary searches an IP-sorted record slice.
func searchIP(recs []*Record, ip ipaddr.Addr) *Record {
	lo, hi := 0, len(recs)
	for lo < hi {
		mid := (lo + hi) / 2
		if recs[mid].IP < ip {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(recs) && recs[lo].IP == ip {
		return recs[lo]
	}
	return nil
}

func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	return b.f.Close()
}
