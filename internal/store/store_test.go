package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
)

func mkRecord(ip string, round int) *Record {
	return &Record{
		IP:         ipaddr.MustParseAddr(ip),
		OpenPorts:  PortHTTP,
		HTTPStatus: 200,
		Title:      "t" + ip,
		Simhash:    simhash.Hash("page " + ip),
		Body:       "<html>" + ip + "</html>",
	}
}

func TestRoundLifecycle(t *testing.T) {
	s := New("ec2")
	r, err := s.BeginRound(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginRound(1); err == nil {
		t.Error("second BeginRound succeeded with round open")
	}
	if err := s.Put(mkRecord("1.2.3.4", 0)); err != nil {
		t.Fatal(err)
	}
	s.AddProbed(100)
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
	if err := s.EndRound(); err == nil {
		t.Error("EndRound with no open round succeeded")
	}
	if s.NumRounds() != 1 {
		t.Fatalf("NumRounds = %d", s.NumRounds())
	}
	if r.Probed != 100 {
		t.Errorf("Probed = %d", r.Probed)
	}
	rec := s.Round(0).Get(ipaddr.MustParseAddr("1.2.3.4"))
	if rec == nil || rec.Round != 0 || rec.Day != 0 {
		t.Fatalf("record = %+v", rec)
	}
	// Bodies dropped by default.
	if rec.Body != "" {
		t.Error("body not dropped at EndRound")
	}
}

func TestKeepBodies(t *testing.T) {
	s := New("ec2")
	s.KeepBodies = true
	if _, err := s.BeginRound(0); err != nil {
		t.Fatal(err)
	}
	_ = s.Put(mkRecord("1.2.3.4", 0))
	_ = s.EndRound()
	if s.Round(0).Records()[0].Body == "" {
		t.Error("body dropped despite KeepBodies")
	}
}

func TestDaysMustAdvance(t *testing.T) {
	s := New("ec2")
	_, _ = s.BeginRound(5)
	_ = s.EndRound()
	if _, err := s.BeginRound(5); err == nil {
		t.Error("BeginRound at same day succeeded")
	}
	if _, err := s.BeginRound(4); err == nil {
		t.Error("BeginRound at earlier day succeeded")
	}
	if _, err := s.BeginRound(6); err != nil {
		t.Errorf("BeginRound at later day failed: %v", err)
	}
}

func TestPutWithoutRound(t *testing.T) {
	s := New("ec2")
	if err := s.Put(mkRecord("1.2.3.4", 0)); err == nil {
		t.Error("Put without open round succeeded")
	}
}

func TestRecordsSortedAndEach(t *testing.T) {
	s := New("ec2")
	_, _ = s.BeginRound(0)
	for _, ip := range []string{"9.9.9.9", "1.1.1.1", "5.5.5.5"} {
		_ = s.Put(mkRecord(ip, 0))
	}
	_ = s.EndRound()
	recs := s.Round(0).Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].IP <= recs[i-1].IP {
			t.Fatal("records not sorted")
		}
	}
	n := 0
	s.Round(0).Each(func(r *Record) bool { n++; return n < 2 })
	if n != 2 {
		t.Errorf("Each early stop visited %d", n)
	}
}

func TestHistory(t *testing.T) {
	s := New("ec2")
	ip := "2.3.4.5"
	for round := 0; round < 5; round++ {
		_, _ = s.BeginRound(round * 3)
		if round != 2 { // unresponsive in round 2
			_ = s.Put(mkRecord(ip, round))
		}
		_ = s.EndRound()
	}
	hist := s.History(ipaddr.MustParseAddr(ip))
	if len(hist) != 4 {
		t.Fatalf("history length = %d, want 4", len(hist))
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Round <= hist[i-1].Round {
			t.Fatal("history not in round order")
		}
	}
	if got := s.History(ipaddr.MustParseAddr("8.8.8.8")); got != nil {
		t.Errorf("history of never-seen IP = %v", got)
	}
}

func TestConcurrentPut(t *testing.T) {
	s := New("ec2")
	_, _ = s.BeginRound(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ip := fmt.Sprintf("10.%d.%d.%d", w, i/256, i%256)
				if err := s.Put(mkRecord(ip, 0)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	_ = s.EndRound()
	if got := s.Round(0).Len(); got != 1600 {
		t.Errorf("records = %d, want 1600", got)
	}
}

func TestRecordPredicates(t *testing.T) {
	r := &Record{}
	if r.Responsive() || r.WebOpen() || r.Available() {
		t.Error("empty record predicates true")
	}
	r.OpenPorts = PortSSH
	if !r.Responsive() || r.WebOpen() {
		t.Error("SSH-only predicates wrong")
	}
	r.OpenPorts = PortHTTPS
	if !r.WebOpen() {
		t.Error("HTTPS-only not web-open")
	}
	r.HTTPStatus = 404
	if !r.Available() {
		t.Error("404 response not available (any HTTP response counts)")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New("ec2")
	for round := 0; round < 3; round++ {
		_, _ = s.BeginRound(round * 2)
		for i := 0; i < 10; i++ {
			rec := mkRecord(fmt.Sprintf("3.3.%d.%d", round, i), round)
			rec.Links = []string{"http://x.example/a"}
			rec.Trackers = []string{"google-analytics"}
			rec.Cluster = int64(i)
			_ = s.Put(rec)
		}
		s.AddProbed(50)
		_ = s.EndRound()
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CloudName != "ec2" || loaded.NumRounds() != 3 {
		t.Fatalf("loaded: name=%q rounds=%d", loaded.CloudName, loaded.NumRounds())
	}
	for round := 0; round < 3; round++ {
		orig := s.Round(round)
		got := loaded.Round(round)
		if got.Day != orig.Day || got.Probed != orig.Probed || got.Len() != orig.Len() {
			t.Fatalf("round %d mismatch", round)
		}
		for i, rec := range got.Records() {
			want := orig.Records()[i]
			if rec.IP != want.IP || rec.Title != want.Title || rec.Simhash != want.Simhash ||
				rec.Cluster != want.Cluster || len(rec.Links) != len(want.Links) {
				t.Fatalf("round %d record %d mismatch: %+v vs %+v", round, i, rec, want)
			}
		}
	}
}

func TestExportJSON(t *testing.T) {
	s := New("ec2")
	_, _ = s.BeginRound(0)
	rec := mkRecord("1.2.3.4", 0)
	rec.Cluster = 7
	rec.VPC = true
	_ = s.Put(rec)
	_ = s.Put(&Record{IP: ipaddr.MustParseAddr("1.2.3.5"), OpenPorts: PortSSH})
	_ = s.EndRound()

	var buf bytes.Buffer
	if err := s.ExportJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var decoded []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded) != 2 {
		t.Fatalf("records = %d", len(decoded))
	}
	first := decoded[0]
	if first["ip"] != "1.2.3.4" || first["cluster"] != float64(7) || first["vpc"] != true {
		t.Errorf("first record = %v", first)
	}
	if _, has := decoded[1]["simhash"]; has {
		t.Error("unavailable record carries a simhash")
	}
	if err := s.ExportJSON(&buf, 99); err == nil {
		t.Error("export of missing round succeeded")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not gob"))); err == nil {
		t.Error("Load of garbage succeeded")
	}
}

func TestRoundOutOfRange(t *testing.T) {
	s := New("x")
	if s.Round(0) != nil || s.Round(-1) != nil {
		t.Error("out-of-range Round not nil")
	}
}

func BenchmarkPut(b *testing.B) {
	s := New("bench")
	_, _ = s.BeginRound(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &Record{IP: ipaddr.Addr(i), OpenPorts: PortHTTP, HTTPStatus: 200}
		if err := s.Put(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHistory(b *testing.B) {
	s := New("bench")
	for round := 0; round < 50; round++ {
		_, _ = s.BeginRound(round)
		for i := 0; i < 1000; i++ {
			_ = s.Put(&Record{IP: ipaddr.Addr(i), OpenPorts: PortHTTP})
		}
		_ = s.EndRound()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.History(ipaddr.Addr(i % 1000))
	}
}

func TestMarkDegraded(t *testing.T) {
	s := New("ec2")
	if err := s.MarkDegraded(); err == nil {
		t.Error("MarkDegraded with no open round succeeded")
	}
	if _, err := s.BeginRound(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mkRecord("54.0.0.1", 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.MarkDegraded(); err != nil {
		t.Fatal(err)
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginRound(3); err != nil {
		t.Fatal(err)
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
	if !s.Round(0).Degraded {
		t.Error("degraded flag lost on EndRound")
	}
	if s.Round(1).Degraded {
		t.Error("degraded flag leaked into the next round")
	}

	// The flag is part of the wire form.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Round(0).Degraded || loaded.Round(1).Degraded {
		t.Errorf("degraded flags after Load: %v, %v, want true, false",
			loaded.Round(0).Degraded, loaded.Round(1).Degraded)
	}
}

func TestDigest(t *testing.T) {
	build := func(degraded bool) *Store {
		s := New("ec2")
		s.BeginRound(0)
		s.Put(mkRecord("54.0.0.1", 0))
		s.Put(mkRecord("54.0.0.2", 0))
		if degraded {
			s.MarkDegraded()
		}
		s.EndRound()
		return s
	}
	a := build(false)
	d1, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Errorf("digest not stable: %s vs %s", d1, d2)
	}
	if len(d1) != 64 {
		t.Errorf("digest %q is not hex SHA-256", d1)
	}
	if db, _ := build(false).Digest(); db != d1 {
		t.Errorf("identical stores digest differently: %s vs %s", d1, db)
	}
	// Any content difference — even just the degraded flag — shows.
	if dd, _ := build(true).Digest(); dd == d1 {
		t.Error("degraded flag not covered by the digest")
	}
	other := build(false)
	other.BeginRound(3)
	other.Put(mkRecord("54.0.0.3", 1))
	other.EndRound()
	if do, _ := other.Digest(); do == d1 {
		t.Error("extra round not covered by the digest")
	}
}

// buildSharded runs an identical two-round campaign through a store
// with the given shard count and returns its digest.
func buildSharded(t *testing.T, shards int) string {
	t.Helper()
	s := New("shard-test")
	s.SetShards(shards)
	for round, day := range []int{0, 3} {
		if _, err := s.BeginRound(day); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					ip := fmt.Sprintf("10.%d.%d.%d", round, w, i)
					if err := s.Put(mkRecord(ip, round)); err != nil {
						t.Error(err)
						return
					}
				}
			}(w)
		}
		wg.Wait()
		if got, want := s.open.Len(), 8*200; got != want {
			t.Fatalf("open round holds %d records, want %d", got, want)
		}
		if err := s.EndRound(); err != nil {
			t.Fatal(err)
		}
	}
	d, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestShardedDigestIdentical is the sharded write path's core
// contract: the same records produce byte-identical digests whatever
// the shard count, because finalize merges and IP-sorts the shards.
func TestShardedDigestIdentical(t *testing.T) {
	base := buildSharded(t, 1)
	for _, shards := range []int{2, 3, 8, 64} {
		if d := buildSharded(t, shards); d != base {
			t.Errorf("%d shards digest %s, 1 shard %s", shards, d, base)
		}
	}
	// Unset (0) behaves like 1.
	if d := buildSharded(t, 0); d != base {
		t.Errorf("0 shards digest diverges from 1 shard")
	}
}

// TestShardedRoundAccessors: Get/Len work on an open sharded round.
func TestShardedRoundAccessors(t *testing.T) {
	s := New("ec2")
	s.SetShards(4)
	r, err := s.BeginRound(0)
	if err != nil {
		t.Fatal(err)
	}
	rec := mkRecord("1.2.3.4", 0)
	if err := s.Put(rec); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Get(rec.IP) != rec {
		t.Errorf("open sharded round: len=%d get=%v", r.Len(), r.Get(rec.IP))
	}
	if r.Get(ipaddr.MustParseAddr("9.9.9.9")) != nil {
		t.Error("missing IP returned a record")
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 || r.Get(rec.IP) != rec {
		t.Errorf("finalized round: len=%d", r.Len())
	}
}

// TestAbortRound: an aborted round vanishes — the store stays
// digestable, and a fresh round can open on the same day.
func TestAbortRound(t *testing.T) {
	s := New("ec2")
	if err := s.AbortRound(); err == nil {
		t.Error("AbortRound with no open round succeeded")
	}
	if _, err := s.BeginRound(0); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mkRecord("1.2.3.4", 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
	before, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginRound(5); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(mkRecord("5.6.7.8", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AbortRound(); err != nil {
		t.Fatal(err)
	}
	after, err := s.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Error("aborted round leaked into the digest")
	}
	if s.NumRounds() != 1 {
		t.Errorf("rounds = %d, want 1", s.NumRounds())
	}
	// The same day can be retried after an abort.
	if _, err := s.BeginRound(5); err != nil {
		t.Fatalf("BeginRound after abort: %v", err)
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
}
