package colstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
)

// --- compressor ---

func TestCompressRoundTrip(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte{},
		[]byte("a"),
		[]byte("abc"),
		[]byte("abcd"),
		[]byte(strings.Repeat("a", 1000)),
		[]byte(strings.Repeat("abcdefgh", 500)),
		[]byte("the quick brown fox jumps over the lazy dog, the quick brown fox"),
		bytes.Repeat([]byte{0, 1, 2, 3, 0, 1, 2, 3, 0, 1}, 333),
	}
	// A deterministic pseudo-random blob (no math/rand: this package is
	// digest-feeding and lint-checked for determinism, tests included).
	blob := make([]byte, 1<<16)
	x := uint32(2463534242)
	for i := range blob {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		blob[i] = byte(x)
	}
	cases = append(cases, blob)
	// Long match far beyond maxOffset: prefix repeats 70 KiB apart.
	far := append(append([]byte{}, blob...), []byte("hello world hello world hello world")...)
	far = append(far, blob[:64]...)
	cases = append(cases, far)

	for i, src := range cases {
		comp := compress(nil, src)
		got, err := decompress(comp, len(src))
		if err != nil {
			t.Fatalf("case %d: decompress: %v", i, err)
		}
		if !bytes.Equal(got, src) {
			t.Fatalf("case %d: round trip mismatch (%d bytes in, %d out)", i, len(src), len(got))
		}
		// Determinism: same input, same bytes.
		if again := compress(nil, src); !bytes.Equal(again, comp) {
			t.Fatalf("case %d: compression nondeterministic", i)
		}
	}
}

func TestDecompressCorrupt(t *testing.T) {
	good := compress(nil, []byte(strings.Repeat("columnar segments ", 64)))
	cases := map[string][]byte{
		"truncated":        good[:len(good)/2],
		"literal overrun":  {0x7f, 'a', 'b'},
		"copy overrun":     {0x80},
		"zero offset":      {0x00, 'a', 0x80, 0x00, 0x00},
		"offset too large": {0x00, 'a', 0x80, 0xff, 0xff},
	}
	for name, src := range cases {
		if _, err := decompress(src, 1<<20); err == nil {
			t.Errorf("%s: decompress succeeded", name)
		}
	}
	// Wrong claimed length on valid input must also fail.
	if _, err := decompress(good, 3); err == nil {
		t.Error("wrong rawLen accepted")
	}
}

// --- segment round trip ---

// fullRecord populates every Record field deterministically; the
// round-trip test additionally proves by reflection that nothing is
// left zero, so a future Record field that lacks a column breaks the
// build here instead of silently corrupting digests.
func fullRecord(ip uint32, round, day int) *store.Record {
	return &store.Record{
		IP:           ipaddr.Addr(ip),
		Round:        round,
		Day:          day,
		OpenPorts:    store.PortSSH | store.PortHTTP | store.PortHTTPS,
		Fetched:      true,
		RobotsDenied: ip%7 == 0,
		VPC:          ip%3 == 0,
		Scheme:       "https",
		HTTPStatus:   200 + int(ip%103),
		FetchErr:     fmt.Sprintf("timeout-%d", ip%5),
		ContentType:  "text/html; charset=utf-8",
		BodyLen:      int(ip % 9000),
		Body:         fmt.Sprintf("<html><body>host %d round %d</body></html>", ip, round),
		PoweredBy:    "PHP/5.3",
		Description:  fmt.Sprintf("deployment %d on day %d", ip, day),
		HeaderNames:  "content-type#date#server#x-powered-by",
		Title:        fmt.Sprintf("Site %d", ip),
		Template:     "WordPress 3.9",
		Server:       "Apache/2.2.22 (Ubuntu)",
		Keywords:     "cloud,hosting,iaas",
		AnalyticsID:  fmt.Sprintf("UA-%d-1", ip%997),
		Simhash:      simhash.Hash(fmt.Sprintf("page %d/%d", ip, round)),
		Links:        []string{fmt.Sprintf("http://example-%d.com/", ip), "http://static.example.com/app.js"},
		Trackers:     []string{"google-analytics", "doubleclick"},
		Subpages:     1 + int(ip%4),
		Cluster:      int64(1 + ip%11),
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	const n = 257
	recs := make([]*store.Record, n)
	for i := range recs {
		recs[i] = fullRecord(uint32(0x0a000000+i*37), 4, 12)
	}
	// Prove the fixture exercises every field (21 divides the IP, so
	// the modular booleans are both set).
	v := reflect.ValueOf(*fullRecord(21_000_000, 4, 12))
	for i := 0; i < v.NumField(); i++ {
		if v.Field(i).IsZero() {
			t.Fatalf("fixture leaves Record.%s zero; extend fullRecord (and the segment columns)",
				v.Type().Field(i).Name)
		}
	}
	meta := store.RoundMeta{Index: 4, Day: 12, Probed: 5000, Degraded: true, Records: n}
	data, err := encodeSegment(meta, "ec2", recs)
	if err != nil {
		t.Fatal(err)
	}
	foot, err := parseFooter(data)
	if err != nil {
		t.Fatal(err)
	}
	if foot.Meta != meta || foot.CloudName != "ec2" {
		t.Fatalf("footer = %+v", foot)
	}
	if foot.MinIP != uint32(recs[0].IP) || foot.MaxIP != uint32(recs[n-1].IP) {
		t.Fatalf("IP bounds [%d,%d], want [%d,%d]", foot.MinIP, foot.MaxIP, recs[0].IP, recs[n-1].IP)
	}
	got, err := decodeSegment(data, foot)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("decoded %d records, want %d", len(got), n)
	}
	for i := range recs {
		if !reflect.DeepEqual(*got[i], *recs[i]) {
			t.Fatalf("record %d round trip:\n got %+v\nwant %+v", i, *got[i], *recs[i])
		}
	}
}

func TestSegmentEmptyAndSparseFields(t *testing.T) {
	// Mostly-zero records (the common case after EndRound drops bodies)
	// and an empty round must both round-trip exactly — including nil
	// vs. empty slices, which gob encodes identically.
	recs := []*store.Record{
		{IP: 1, Round: 0, Day: 0, OpenPorts: store.PortHTTP},
		{IP: 9, Round: 0, Day: 0, HTTPStatus: 200, Title: "x"},
	}
	meta := store.RoundMeta{Index: 0, Records: 2}
	data, err := encodeSegment(meta, "c", recs)
	if err != nil {
		t.Fatal(err)
	}
	foot, err := parseFooter(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSegment(data, foot)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !reflect.DeepEqual(*got[i], *recs[i]) {
			t.Fatalf("sparse record %d:\n got %+v\nwant %+v", i, *got[i], *recs[i])
		}
		if got[i].Links != nil || got[i].Trackers != nil {
			t.Fatalf("empty slices decoded non-nil: %+v", *got[i])
		}
	}

	empty, err := encodeSegment(store.RoundMeta{Index: 1}, "c", nil)
	if err != nil {
		t.Fatal(err)
	}
	efoot, err := parseFooter(empty)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := decodeSegment(empty, efoot); err != nil || len(got) != 0 {
		t.Fatalf("empty round: %d records, err %v", len(got), err)
	}
}

func TestEncodeRejectsUnsorted(t *testing.T) {
	recs := []*store.Record{{IP: 9}, {IP: 1}}
	if _, err := encodeSegment(store.RoundMeta{Records: 2}, "c", recs); err == nil {
		t.Error("unsorted records accepted")
	}
	if _, err := encodeSegment(store.RoundMeta{Records: 1}, "c", recs); err == nil {
		t.Error("record-count mismatch accepted")
	}
}

// --- backend ---

// buildCampaign drives identical puts into a store; shared by the
// identity tests.
func buildCampaign(t *testing.T, s *store.Store, rounds, perRound int) {
	t.Helper()
	for r := 0; r < rounds; r++ {
		if _, err := s.BeginRound(r * 3); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perRound; i++ {
			if err := s.Put(fullRecord(uint32(0x0a000000+i*11), r, r*3)); err != nil {
				t.Fatal(err)
			}
		}
		s.AddProbed(int64(perRound) * 2)
		if err := s.EndRound(); err != nil {
			t.Fatal(err)
		}
	}
	// One empty round: MinIP/MaxIP degenerate, History must skip it.
	if _, err := s.BeginRound(rounds * 3); err != nil {
		t.Fatal(err)
	}
	if err := s.EndRound(); err != nil {
		t.Fatal(err)
	}
}

func openBackend(t *testing.T, dir string, opts Options) *Backend {
	t.Helper()
	b, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDigestIdentity is the tentpole contract: the same campaign
// through the in-memory and columnar backends yields byte-identical
// Save output (hence digests), History, and ExportJSON — and the
// columnar digest survives a close/reopen from disk.
func TestDigestIdentity(t *testing.T) {
	dir := t.TempDir()
	mem := store.New("ec2")
	col := store.NewWithBackend("ec2", openBackend(t, dir, Options{CloudName: "ec2"}))
	buildCampaign(t, mem, 3, 50)
	buildCampaign(t, col, 3, 50)

	memDigest, err := mem.Digest()
	if err != nil {
		t.Fatal(err)
	}
	colDigest, err := col.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if memDigest != colDigest {
		t.Fatalf("digest diverges: mem %s, colstore %s", memDigest, colDigest)
	}

	ip := ipaddr.Addr(0x0a000000 + 7*11)
	if got, want := mem.History(ip), col.History(ip); !reflect.DeepEqual(derefAll(got), derefAll(want)) {
		t.Fatalf("History diverges:\n mem %+v\n col %+v", got, want)
	}
	if h := col.History(ipaddr.MustParseAddr("9.9.9.9")); h != nil {
		t.Fatalf("History of unseen IP = %+v", h)
	}

	var memJSON, colJSON bytes.Buffer
	if err := mem.ExportJSON(&memJSON, 1); err != nil {
		t.Fatal(err)
	}
	if err := col.ExportJSON(&colJSON, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memJSON.Bytes(), colJSON.Bytes()) {
		t.Fatal("ExportJSON diverges between backends")
	}

	// UpdateRounds write-backs must persist identically through Rewrite.
	mutate := func(r *store.Round) bool {
		changed := false
		r.Each(func(rec *store.Record) bool {
			if rec.IP%2 == 0 {
				rec.VPC = false
				rec.Cluster = 99
				changed = true
			}
			return true
		})
		return changed
	}
	if err := mem.UpdateRounds(mutate); err != nil {
		t.Fatal(err)
	}
	if err := col.UpdateRounds(mutate); err != nil {
		t.Fatal(err)
	}

	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen from disk: the rewritten state must match the in-memory
	// store byte for byte.
	reopened := store.NewWithBackend("ec2", openBackend(t, dir, Options{}))
	memDigest2, err := mem.Digest()
	if err != nil {
		t.Fatal(err)
	}
	reDigest, err := reopened.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if memDigest2 != reDigest {
		t.Fatalf("post-UpdateRounds digest diverges after reopen: mem %s, colstore %s", memDigest2, reDigest)
	}
	if memDigest2 == memDigest {
		t.Fatal("UpdateRounds changed nothing; the rewrite path was not exercised")
	}
}

func derefAll(recs []*store.Record) []store.Record {
	out := make([]store.Record, len(recs))
	for i, r := range recs {
		out[i] = *r
	}
	return out
}

// TestShardedDigestIdentity: the columnar backend under the sharded
// write path matches the unsharded in-memory digest.
func TestShardedDigestIdentity(t *testing.T) {
	var base string
	for _, shards := range []int{1, 2, 4} {
		col := store.NewWithBackend("ec2", openBackend(t, t.TempDir(), Options{CloudName: "ec2"}))
		col.SetShards(shards)
		buildCampaign(t, col, 2, 64)
		d, err := col.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if shards == 1 {
			base = d
		} else if d != base {
			t.Errorf("%d shards digest %s, 1 shard %s", shards, d, base)
		}
	}
	mem := store.New("ec2")
	buildCampaign(t, mem, 2, 64)
	if d, err := mem.Digest(); err != nil || d != base {
		t.Errorf("memory digest %s (err %v), colstore %s", d, err, base)
	}
}

func TestOpenValidation(t *testing.T) {
	build := func(t *testing.T) string {
		dir := t.TempDir()
		s := store.NewWithBackend("ec2", openBackend(t, dir, Options{CloudName: "ec2"}))
		buildCampaign(t, s, 2, 20)
		return dir
	}

	t.Run("truncated segment", func(t *testing.T) {
		dir := build(t)
		path := filepath.Join(dir, segName(1))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// A torn write: the tail of the file never made it to disk.
		if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = Open(dir, Options{})
		if !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("flipped byte", func(t *testing.T) {
		dir := build(t)
		path := filepath.Join(dir, segName(0))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("missing segment", func(t *testing.T) {
		dir := build(t)
		if err := os.Remove(filepath.Join(dir, segName(0))); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, Options{}); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
	})

	t.Run("leftover tmp ignored", func(t *testing.T) {
		dir := build(t)
		// An interrupted atomic write leaves a .tmp sibling; the
		// committed directory state is still fully valid.
		tmp := filepath.Join(dir, segName(3)+".tmp")
		if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
		b, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if b.NumRounds() != 3 {
			t.Fatalf("NumRounds = %d, want 3", b.NumRounds())
		}
	})

	t.Run("cloud name mismatch", func(t *testing.T) {
		dir := build(t)
		if _, err := Open(dir, Options{CloudName: "azure"}); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("Open = %v, want ErrCorrupt", err)
		}
		b, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if b.CloudName() != "ec2" {
			t.Fatalf("CloudName = %q", b.CloudName())
		}
	})
}

func TestAppendValidation(t *testing.T) {
	b := openBackend(t, t.TempDir(), Options{CloudName: "c"})
	if err := b.Append(store.RoundMeta{Index: 3}, nil); err == nil {
		t.Error("out-of-sequence append accepted")
	}
	if err := b.Append(store.RoundMeta{Index: 0}, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Rewrite(5, store.RoundMeta{Index: 5}, nil); err == nil {
		t.Error("rewrite of missing round accepted")
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(store.RoundMeta{Index: 1}, nil); err == nil {
		t.Error("append after close accepted")
	}
	if _, err := b.Records(0); err == nil {
		t.Error("read after close accepted")
	}
}

func TestCacheEviction(t *testing.T) {
	dir := t.TempDir()
	s := store.NewWithBackend("c", store.Backend(openBackend(t, dir, Options{CloudName: "c", CacheRounds: 1})))
	buildCampaign(t, s, 4, 10)
	// Walk all rounds repeatedly with a one-round cache; every access
	// must still see the right records.
	for pass := 0; pass < 2; pass++ {
		i := 0
		s.EachRound(func(r *store.Round) bool {
			if r.Index != i {
				t.Fatalf("round %d has index %d", i, r.Index)
			}
			want := 10
			if i == 4 {
				want = 0
			}
			if r.Len() != want {
				t.Fatalf("round %d has %d records, want %d", i, r.Len(), want)
			}
			i++
			return true
		})
	}
	// CacheRounds < 0 disables caching entirely.
	b := openBackend(t, dir, Options{CacheRounds: -1})
	for i := 0; i < b.NumRounds(); i++ {
		if _, err := b.Records(i); err != nil {
			t.Fatal(err)
		}
	}
	if len(b.cache) != 0 {
		t.Fatalf("disabled cache holds %d rounds", len(b.cache))
	}
}

// TestMemoryBounded is the acceptance check for the columnar engine's
// reason to exist: a 50k-IP x 10-round campaign must stay under
// 256 MiB of live heap with colstore while the in-memory backend, by
// retaining every record, exceeds what colstore needed.
func TestMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("50k x 10 campaign; skipped with -short")
	}
	const (
		rounds   = 10
		perRound = 50_000
		limit    = 256 << 20
	)
	run := func(s *store.Store) uint64 {
		var peak uint64
		sample := func() {
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		for r := 0; r < rounds; r++ {
			if _, err := s.BeginRound(r); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < perRound; i++ {
				if err := s.Put(fullRecord(uint32(0x0a000000+i*7), r, r)); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.EndRound(); err != nil {
				t.Fatal(err)
			}
			sample()
		}
		return peak
	}

	colPeak := run(store.NewWithBackend("ec2", openBackend(t, t.TempDir(), Options{CloudName: "ec2"})))
	memPeak := run(store.New("ec2"))
	t.Logf("peak heap: colstore %d MiB, memory %d MiB", colPeak>>20, memPeak>>20)
	if colPeak > limit {
		t.Errorf("colstore peak heap %d MiB exceeds the 256 MiB budget", colPeak>>20)
	}
	if memPeak <= colPeak {
		t.Errorf("memory backend peak %d MiB not above colstore's %d MiB; the comparison is vacuous",
			memPeak>>20, colPeak>>20)
	}
}
