// The segment byte compressor: an LZ77-family byte codec in the
// snappy/LZ4 spirit — greedy hash-chain matching, literal runs and
// back-references, no entropy stage — small enough to own outright
// (the repo takes no dependencies) and fast enough that column
// encoding stays I/O-bound. The format is deliberately simple:
//
//	control byte c < 0x80: literal run of c+1 bytes follows
//	control byte c >= 0x80: copy of (c&0x7f)+minMatch bytes from
//	    offset o (2 bytes little-endian, 1..maxOffset) back
//
// Compression is deterministic: the same input always yields the same
// output, so segment bytes — like everything else in the store — are
// reproducible across runs.
package colstore

import (
	"encoding/binary"
	"fmt"
)

const (
	minMatch      = 4
	maxLiteralRun = 128 // control 0x00..0x7f
	maxCopyLen    = 0x7f + minMatch
	maxOffset     = 1<<16 - 1
	hashBits      = 14
)

// hash4 mixes 4 bytes into a table index.
func hash4(v uint32) uint32 {
	return (v * 2654435761) >> (32 - hashBits)
}

func load32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// compress appends the compressed form of src to dst.
func compress(dst, src []byte) []byte {
	var table [1 << hashBits]int32
	for i := range table {
		table[i] = -1
	}
	litStart := 0
	emitLiterals := func(end int) {
		for litStart < end {
			n := end - litStart
			if n > maxLiteralRun {
				n = maxLiteralRun
			}
			dst = append(dst, byte(n-1))
			dst = append(dst, src[litStart:litStart+n]...)
			litStart += n
		}
	}
	i := 0
	for i+minMatch <= len(src) {
		h := hash4(load32(src, i))
		cand := table[h]
		table[h] = int32(i)
		if cand >= 0 && i-int(cand) <= maxOffset && load32(src, int(cand)) == load32(src, i) {
			// Extend the match.
			length := minMatch
			for i+length < len(src) && length < maxCopyLen && src[int(cand)+length] == src[i+length] {
				length++
			}
			emitLiterals(i)
			dst = append(dst, byte(0x80|(length-minMatch)))
			var off [2]byte
			binary.LittleEndian.PutUint16(off[:], uint16(i-int(cand)))
			dst = append(dst, off[0], off[1])
			i += length
			litStart = i
			continue
		}
		i++
	}
	emitLiterals(len(src))
	return dst
}

// decompress expands src into a fresh buffer of exactly rawLen bytes,
// bounds-checking every step: mangled input returns an error, never a
// panic or an overrun.
func decompress(src []byte, rawLen int) ([]byte, error) {
	if rawLen < 0 {
		return nil, fmt.Errorf("colstore: negative raw length %d", rawLen)
	}
	dst := make([]byte, 0, rawLen)
	i := 0
	for i < len(src) {
		c := src[i]
		i++
		if c < 0x80 {
			n := int(c) + 1
			if i+n > len(src) {
				return nil, fmt.Errorf("colstore: literal run overruns input")
			}
			dst = append(dst, src[i:i+n]...)
			i += n
			continue
		}
		length := int(c&0x7f) + minMatch
		if i+2 > len(src) {
			return nil, fmt.Errorf("colstore: copy overruns input")
		}
		off := int(binary.LittleEndian.Uint16(src[i:]))
		i += 2
		if off == 0 || off > len(dst) {
			return nil, fmt.Errorf("colstore: copy offset %d outside window of %d", off, len(dst))
		}
		// Overlapping copies (off < length) are legal and replicate
		// runs, so copy byte by byte.
		for j := 0; j < length; j++ {
			dst = append(dst, dst[len(dst)-off])
		}
	}
	if len(dst) != rawLen {
		return nil, fmt.Errorf("colstore: decompressed %d bytes, want %d", len(dst), rawLen)
	}
	return dst, nil
}
