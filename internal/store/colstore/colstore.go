// Package colstore is the on-disk columnar store backend: each
// finalized round becomes one append-only segment file
// (round-00000.seg, round-00001.seg, ...) written crash-safely through
// internal/atomicfile, so a campaign's resident memory is bounded by
// the open round plus a small LRU of decoded segments instead of the
// whole history. Segments are validated — framing, CRC, block bounds —
// once at Open; a torn final write (a leftover *.tmp sibling) is
// ignored and a truncated or mangled segment reports store.ErrCorrupt
// before any read path runs.
//
// The backend honors the store.Backend byte-identity contract: records
// round-trip through the column encodings field-for-field, so
// Save/Digest/ExportJSON/History over a colstore-backed Store are
// byte-identical to the in-memory backend's output.
package colstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"whowas/internal/atomicfile"
	"whowas/internal/ipaddr"
	"whowas/internal/store"
)

// Options configures Open.
type Options struct {
	// CloudName names the store when the directory is empty. When
	// segments already exist their recorded cloud name wins; a non-empty
	// CloudName that disagrees with it is an error.
	CloudName string
	// CacheRounds bounds the LRU of decoded rounds. Zero means the
	// default (2: the round being read plus its predecessor, the shape
	// churn analyses walk). Negative disables caching.
	CacheRounds int
}

const defaultCacheRounds = 2

// Backend implements store.Backend over a directory of per-round
// columnar segments.
type Backend struct {
	dir       string
	cloudName string
	cacheCap  int

	// mu guards segs, cache and closed. The store frontend allows
	// concurrent readers; they serialize here, which is the price of
	// sharing one LRU — segment decode, not lock hold time, dominates.
	mu     sync.Mutex
	segs   []*segFooter
	cache  []cachedRound // LRU order: most recently used last
	closed bool
}

type cachedRound struct {
	index int
	recs  []*store.Record
}

var _ store.Backend = (*Backend)(nil)

// segName is the canonical segment filename for a round index.
func segName(i int) string { return fmt.Sprintf("round-%05d.seg", i) }

func (b *Backend) segPath(i int) string { return filepath.Join(b.dir, segName(i)) }

// Open opens (creating if needed) a segment directory. Every existing
// segment is fully validated — magic, CRC over the whole file, block
// bounds, sequential round indexes — so later reads operate on proven
// data; any damage surfaces here as an error wrapping store.ErrCorrupt.
// Leftover .tmp files from an interrupted atomic write are ignored:
// the rename never happened, so the directory's committed state is
// intact without them.
func Open(dir string, opts Options) (*Backend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if filepath.Ext(name) == ".seg" {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	cacheCap := opts.CacheRounds
	switch {
	case cacheCap == 0:
		cacheCap = defaultCacheRounds
	case cacheCap < 0:
		cacheCap = 0
	}
	b := &Backend{dir: dir, cloudName: opts.CloudName, cacheCap: cacheCap}
	for i, name := range names {
		if name != segName(i) {
			return nil, fmt.Errorf("%w: expected segment %s, found %s", store.ErrCorrupt, segName(i), name)
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("colstore: %w", err)
		}
		foot, err := parseFooter(data)
		if err != nil {
			return nil, fmt.Errorf("colstore: segment %s: %w", name, err)
		}
		if foot.Meta.Index != i {
			return nil, fmt.Errorf("%w: segment %s carries round index %d", store.ErrCorrupt, name, foot.Meta.Index)
		}
		if i == 0 && opts.CloudName == "" {
			b.cloudName = foot.CloudName
		} else if foot.CloudName != b.cloudName {
			return nil, fmt.Errorf("%w: segment %s is for cloud %q, store is %q", store.ErrCorrupt, name, foot.CloudName, b.cloudName)
		}
		b.segs = append(b.segs, foot)
	}
	return b, nil
}

// CloudName returns the store's cloud name (from existing segments, or
// Options for a fresh directory).
func (b *Backend) CloudName() string { return b.cloudName }

// NumRounds returns how many segments the directory holds.
func (b *Backend) NumRounds() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.segs)
}

// Meta returns a round's metadata from its segment footer — no block
// is touched.
func (b *Backend) Meta(i int) (store.RoundMeta, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.segs) {
		return store.RoundMeta{}, fmt.Errorf("colstore: no round %d", i)
	}
	return b.segs[i].Meta, nil
}

// Append encodes the round into a new segment and commits it with an
// atomic write; the encoded records stay in the LRU so the round just
// finalized reads back without a decode.
func (b *Backend) Append(meta store.RoundMeta, recs []*store.Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("colstore: backend closed")
	}
	if meta.Index != len(b.segs) {
		return fmt.Errorf("colstore: append round %d, have %d rounds", meta.Index, len(b.segs))
	}
	foot, err := b.writeSegment(meta, recs)
	if err != nil {
		return err
	}
	b.segs = append(b.segs, foot)
	b.cachePut(meta.Index, recs)
	return nil
}

// Rewrite re-encodes an existing round in place (UpdateRounds
// write-backs: cartography's VPC labels, clustering's assignments).
func (b *Backend) Rewrite(i int, meta store.RoundMeta, recs []*store.Record) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return fmt.Errorf("colstore: backend closed")
	}
	if i < 0 || i >= len(b.segs) {
		return fmt.Errorf("colstore: no round %d", i)
	}
	if meta.Index != i {
		return fmt.Errorf("colstore: rewrite round %d with meta for round %d", i, meta.Index)
	}
	foot, err := b.writeSegment(meta, recs)
	if err != nil {
		return err
	}
	b.segs[i] = foot
	b.cacheDrop(i)
	b.cachePut(i, recs)
	return nil
}

// writeSegment encodes and atomically writes one segment, returning
// its parsed footer. Caller holds mu.
func (b *Backend) writeSegment(meta store.RoundMeta, recs []*store.Record) (*segFooter, error) {
	data, err := encodeSegment(meta, b.cloudName, recs)
	if err != nil {
		return nil, err
	}
	// Re-parsing what was just encoded both yields the footer to retain
	// and proves the segment passes the exact validation Open applies.
	foot, err := parseFooter(data)
	if err != nil {
		return nil, fmt.Errorf("colstore: freshly encoded segment invalid: %w", err)
	}
	if err := atomicfile.WriteFile(b.segPath(meta.Index), data); err != nil {
		return nil, err
	}
	return foot, nil
}

// Records returns a round's records, decoding its segment unless the
// LRU still holds it.
func (b *Backend) Records(i int) ([]*store.Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.recordsLocked(i)
}

func (b *Backend) recordsLocked(i int) ([]*store.Record, error) {
	if b.closed {
		return nil, fmt.Errorf("colstore: backend closed")
	}
	if i < 0 || i >= len(b.segs) {
		return nil, fmt.Errorf("colstore: no round %d", i)
	}
	if recs, ok := b.cacheGet(i); ok {
		return recs, nil
	}
	data, err := os.ReadFile(b.segPath(i))
	if err != nil {
		return nil, fmt.Errorf("colstore: %w", err)
	}
	recs, err := decodeSegment(data, b.segs[i])
	if err != nil {
		return nil, fmt.Errorf("colstore: segment %s: %w", segName(i), err)
	}
	b.cachePut(i, recs)
	return recs, nil
}

// History walks the per-IP record trail without materializing rounds
// wholesale: the footer's IP bounds rule most segments out, and a
// candidate segment's membership is tested against its IP column alone
// (one partial file read) before the full round is decoded.
func (b *Backend) History(ip ipaddr.Addr) ([]*store.Record, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, fmt.Errorf("colstore: backend closed")
	}
	var out []*store.Record
	for i, foot := range b.segs {
		if foot.Meta.Records == 0 || uint32(ip) < foot.MinIP || uint32(ip) > foot.MaxIP {
			continue
		}
		if recs, ok := b.cacheGet(i); ok {
			if rec := searchRecs(recs, ip); rec != nil {
				out = append(out, rec)
			}
			continue
		}
		hit, err := b.ipInSegment(i, foot, ip)
		if err != nil {
			return nil, err
		}
		if !hit {
			continue
		}
		recs, err := b.recordsLocked(i)
		if err != nil {
			return nil, err
		}
		if rec := searchRecs(recs, ip); rec != nil {
			out = append(out, rec)
		}
	}
	return out, nil
}

// ipInSegment tests membership by decoding only the segment's IP
// column, read with one ReadAt of the block's byte range.
func (b *Backend) ipInSegment(i int, foot *segFooter, ip ipaddr.Addr) (bool, error) {
	blk, err := foot.block(ipCol)
	if err != nil {
		return false, err
	}
	f, err := os.Open(b.segPath(i))
	if err != nil {
		return false, fmt.Errorf("colstore: %w", err)
	}
	defer f.Close()
	comp := make([]byte, blk.CompLen)
	if _, err := f.ReadAt(comp, blk.Off); err != nil {
		return false, fmt.Errorf("colstore: reading %s ip column: %w", segName(i), err)
	}
	raw, err := decompress(comp, int(blk.RawLen))
	if err != nil {
		return false, fmt.Errorf("%w: segment %s ip column: %v", store.ErrCorrupt, segName(i), err)
	}
	ips, err := decodeIPColumn(raw, foot.Meta.Records)
	if err != nil {
		return false, err
	}
	j := sort.Search(len(ips), func(k int) bool { return ips[k] >= uint32(ip) })
	return j < len(ips) && ips[j] == uint32(ip), nil
}

// searchRecs binary searches an IP-sorted record slice.
func searchRecs(recs []*store.Record, ip ipaddr.Addr) *store.Record {
	j := sort.Search(len(recs), func(k int) bool { return recs[k].IP >= ip })
	if j < len(recs) && recs[j].IP == ip {
		return recs[j]
	}
	return nil
}

// Close marks the backend closed. Segment files are opened per read,
// so there is nothing else to release; Close is idempotent.
func (b *Backend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	return nil
}

// cacheGet returns a cached round, refreshing its recency.
func (b *Backend) cacheGet(i int) ([]*store.Record, bool) {
	for k := range b.cache {
		if b.cache[k].index == i {
			c := b.cache[k]
			b.cache = append(append(b.cache[:k:k], b.cache[k+1:]...), c)
			return c.recs, true
		}
	}
	return nil, false
}

// cachePut inserts a round as most-recent, evicting the oldest beyond
// the cap.
func (b *Backend) cachePut(i int, recs []*store.Record) {
	if b.cacheCap == 0 {
		return
	}
	b.cacheDrop(i)
	b.cache = append(b.cache, cachedRound{index: i, recs: recs})
	if len(b.cache) > b.cacheCap {
		b.cache = append(b.cache[:0:0], b.cache[len(b.cache)-b.cacheCap:]...)
	}
}

// cacheDrop removes a round from the cache if present.
func (b *Backend) cacheDrop(i int) {
	for k := range b.cache {
		if b.cache[k].index == i {
			b.cache = append(b.cache[:k:k], b.cache[k+1:]...)
			return
		}
	}
}
