// Segment encoding: one file per finalized round. Records are stored
// column-wise — each field across all records becomes one block,
// encoded to its shape (delta+uvarint IPs, packed flag bits, a shared
// string dictionary for the feature columns) and byte-compressed — so
// a segment is both much smaller than its gob form and decodable one
// column at a time (History reads just the IP column to test
// membership). The layout:
//
//	[magic "WWCOLSG1"]
//	[compressed column blocks, back to back]
//	[footer: hand-rolled varint encoding of segFooter — round meta,
//	         cloud name, IP bounds, block directory]
//	[uint32 BE footer length]
//	[uint32 BE CRC-32 (IEEE) over everything above]
//	[tail magic "WWCOLEND"]
//
// The CRC covers the whole file, so Open proves a segment intact once
// and reads never fail afterwards; a torn or truncated write is
// detected up front and reported as store.ErrCorrupt.
package colstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
)

const (
	headMagic = "WWCOLSG1"
	tailMagic = "WWCOLEND"
	// tailLen is footerLen (4) + CRC (4) + tail magic (8).
	tailLen = 16
)

// segFooter is the segment's directory, written before the tail with
// the hand-rolled varint encoding below. Gob would be simpler but its
// type IDs come from a process-global registry, so its bytes depend on
// what else the process encoded first — and segment files (like store
// digests) must be byte-reproducible no matter who writes them.
type segFooter struct {
	Meta      store.RoundMeta
	CloudName string
	// MinIP/MaxIP bound the round's (sorted) IPs; History skips the
	// segment without touching its blocks when the probe is outside.
	MinIP, MaxIP uint32
	Blocks       []blockInfo
}

// blockInfo locates one compressed column block.
type blockInfo struct {
	Name    string
	Off     int64 // absolute file offset
	CompLen int64
	RawLen  int64
}

// Column block names, in file order. ipCol is decodable on its own.
const (
	ipCol       = "ip"
	portsCol    = "ports"
	flagsCol    = "flags"
	schemeCol   = "scheme"
	statusCol   = "status"
	fetchErrCol = "fetcherr"
	ctypeCol    = "ctype"
	bodyLenCol  = "bodylen"
	bodyCol     = "body"
	poweredCol  = "poweredby"
	descCol     = "desc"
	hdrCol      = "hdrnames"
	titleCol    = "title"
	templateCol = "template"
	serverCol   = "server"
	keywordsCol = "keywords"
	gaCol       = "gaid"
	simhashCol  = "simhash"
	linksCol    = "links"
	trackersCol = "trackers"
	subpagesCol = "subpages"
	clusterCol  = "cluster"
	dictCol     = "dict"
)

// Flag bits for the packed flags column.
const (
	flagFetched = 1 << 0
	flagRobots  = 1 << 1
	flagVPC     = 1 << 2
)

// colWriter accumulates one raw (pre-compression) column.
type colWriter struct{ buf []byte }

func (w *colWriter) uvarint(x uint64) { w.buf = binary.AppendUvarint(w.buf, x) }
func (w *colWriter) varint(x int64)   { w.buf = binary.AppendVarint(w.buf, x) }
func (w *colWriter) byte(b byte)      { w.buf = append(w.buf, b) }
func (w *colWriter) bytes(p []byte)   { w.buf = append(w.buf, p...) }
func (w *colWriter) str(dict map[string]uint64, s string) {
	w.uvarint(dict[s])
}

// colReader walks one decompressed column.
type colReader struct {
	buf []byte
	pos int
	col string
}

func (r *colReader) overrun() error {
	return fmt.Errorf("%w: column %q overruns its block", store.ErrCorrupt, r.col)
}

func (r *colReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, r.overrun()
	}
	r.pos += n
	return v, nil
}

func (r *colReader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, r.overrun()
	}
	r.pos += n
	return v, nil
}

func (r *colReader) byte() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, r.overrun()
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *colReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.pos+n > len(r.buf) {
		return nil, r.overrun()
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

// buildDict collects every string any dictionary column references,
// sorted for a deterministic encoding. Index 0 is always "".
func buildDict(recs []*store.Record) ([]string, map[string]uint64) {
	set := map[string]struct{}{"": {}}
	add := func(s string) { set[s] = struct{}{} }
	for _, rec := range recs {
		add(rec.Scheme)
		add(rec.FetchErr)
		add(rec.ContentType)
		add(rec.PoweredBy)
		add(rec.Description)
		add(rec.HeaderNames)
		add(rec.Title)
		add(rec.Template)
		add(rec.Server)
		add(rec.Keywords)
		add(rec.AnalyticsID)
		for _, s := range rec.Links {
			add(s)
		}
		for _, s := range rec.Trackers {
			add(s)
		}
	}
	words := make([]string, 0, len(set))
	for s := range set {
		words = append(words, s)
	}
	sort.Strings(words)
	// "" sorts first, so index 0 is the empty string by construction.
	idx := make(map[string]uint64, len(words))
	for i, s := range words {
		idx[s] = uint64(i)
	}
	return words, idx
}

// encodeSegment renders one finalized round (records sorted by IP)
// into segment bytes.
func encodeSegment(meta store.RoundMeta, cloudName string, recs []*store.Record) ([]byte, error) {
	if meta.Records != len(recs) {
		return nil, fmt.Errorf("colstore: meta says %d records, got %d", meta.Records, len(recs))
	}
	words, dict := buildDict(recs)

	cols := make(map[string]*colWriter)
	col := func(name string) *colWriter {
		w := cols[name]
		if w == nil {
			w = &colWriter{}
			cols[name] = w
		}
		return w
	}

	prevIP := uint64(0)
	for i, rec := range recs {
		ip := uint64(uint32(rec.IP))
		if i > 0 && ip <= prevIP {
			return nil, fmt.Errorf("colstore: records not strictly IP-sorted")
		}
		col(ipCol).uvarint(ip - prevIP)
		prevIP = ip
		col(portsCol).byte(rec.OpenPorts)
		var flags byte
		if rec.Fetched {
			flags |= flagFetched
		}
		if rec.RobotsDenied {
			flags |= flagRobots
		}
		if rec.VPC {
			flags |= flagVPC
		}
		col(flagsCol).byte(flags)
		col(schemeCol).str(dict, rec.Scheme)
		col(statusCol).uvarint(uint64(rec.HTTPStatus))
		col(fetchErrCol).str(dict, rec.FetchErr)
		col(ctypeCol).str(dict, rec.ContentType)
		col(bodyLenCol).uvarint(uint64(rec.BodyLen))
		body := col(bodyCol)
		body.uvarint(uint64(len(rec.Body)))
		body.bytes([]byte(rec.Body))
		col(poweredCol).str(dict, rec.PoweredBy)
		col(descCol).str(dict, rec.Description)
		col(hdrCol).str(dict, rec.HeaderNames)
		col(titleCol).str(dict, rec.Title)
		col(templateCol).str(dict, rec.Template)
		col(serverCol).str(dict, rec.Server)
		col(keywordsCol).str(dict, rec.Keywords)
		col(gaCol).str(dict, rec.AnalyticsID)
		var sh [12]byte
		binary.BigEndian.PutUint32(sh[:4], rec.Simhash.Hi)
		binary.BigEndian.PutUint64(sh[4:], rec.Simhash.Lo)
		col(simhashCol).bytes(sh[:])
		links := col(linksCol)
		links.uvarint(uint64(len(rec.Links)))
		for _, s := range rec.Links {
			links.str(dict, s)
		}
		trackers := col(trackersCol)
		trackers.uvarint(uint64(len(rec.Trackers)))
		for _, s := range rec.Trackers {
			trackers.str(dict, s)
		}
		col(subpagesCol).uvarint(uint64(rec.Subpages))
		col(clusterCol).varint(rec.Cluster)
	}
	dw := col(dictCol)
	dw.uvarint(uint64(len(words)))
	for _, s := range words {
		dw.uvarint(uint64(len(s)))
		dw.bytes([]byte(s))
	}

	var out bytes.Buffer
	out.WriteString(headMagic)
	f := segFooter{Meta: meta, CloudName: cloudName}
	if len(recs) > 0 {
		f.MinIP = uint32(recs[0].IP)
		f.MaxIP = uint32(recs[len(recs)-1].IP)
	}
	for _, name := range colOrder() {
		// col() rather than the map: an empty round never wrote the
		// record columns, but every block must exist in the directory.
		w := col(name)
		comp := compress(nil, w.buf)
		f.Blocks = append(f.Blocks, blockInfo{
			Name:    name,
			Off:     int64(out.Len()),
			CompLen: int64(len(comp)),
			RawLen:  int64(len(w.buf)),
		})
		out.Write(comp)
	}
	footStart := out.Len()
	out.Write(encodeFooter(&f))
	var tail [tailLen]byte
	binary.BigEndian.PutUint32(tail[0:4], uint32(out.Len()-footStart))
	out.Write(tail[0:4])
	crc := crc32.ChecksumIEEE(out.Bytes())
	binary.BigEndian.PutUint32(tail[4:8], crc)
	copy(tail[8:], tailMagic)
	out.Write(tail[4:])
	return out.Bytes(), nil
}

// colOrder is the fixed on-disk block order.
func colOrder() []string {
	return []string{
		ipCol, portsCol, flagsCol, schemeCol, statusCol, fetchErrCol,
		ctypeCol, bodyLenCol, bodyCol, poweredCol, descCol, hdrCol,
		titleCol, templateCol, serverCol, keywordsCol, gaCol,
		simhashCol, linksCol, trackersCol, subpagesCol, clusterCol,
		dictCol,
	}
}

// parseFooter validates a whole segment's framing and CRC and decodes
// its footer. data is the complete file contents.
func parseFooter(data []byte) (*segFooter, error) {
	if len(data) < len(headMagic)+tailLen {
		return nil, fmt.Errorf("%w: segment of %d bytes is too short", store.ErrCorrupt, len(data))
	}
	if string(data[:len(headMagic)]) != headMagic {
		return nil, fmt.Errorf("%w: bad segment magic", store.ErrCorrupt)
	}
	if string(data[len(data)-8:]) != tailMagic {
		return nil, fmt.Errorf("%w: bad segment tail (torn write?)", store.ErrCorrupt)
	}
	crcOff := len(data) - 12
	wantCRC := binary.BigEndian.Uint32(data[crcOff : crcOff+4])
	if got := crc32.ChecksumIEEE(data[:crcOff]); got != wantCRC {
		return nil, fmt.Errorf("%w: segment CRC mismatch (%08x != %08x)", store.ErrCorrupt, got, wantCRC)
	}
	footerLen := int(binary.BigEndian.Uint32(data[crcOff-4 : crcOff]))
	footEnd := crcOff - 4
	footStart := footEnd - footerLen
	if footerLen <= 0 || footStart < len(headMagic) {
		return nil, fmt.Errorf("%w: bad footer length %d", store.ErrCorrupt, footerLen)
	}
	f, err := decodeFooter(data[footStart:footEnd])
	if err != nil {
		return nil, err
	}
	for _, b := range f.Blocks {
		if b.Off < int64(len(headMagic)) || b.CompLen < 0 || b.Off+b.CompLen > int64(footStart) || b.RawLen < 0 {
			return nil, fmt.Errorf("%w: block %q outside segment bounds", store.ErrCorrupt, b.Name)
		}
	}
	return f, nil
}

// encodeFooter renders the footer deterministically: meta fields,
// cloud name, IP bounds, then the block directory, all varints and
// length-prefixed strings.
func encodeFooter(f *segFooter) []byte {
	w := &colWriter{}
	w.uvarint(uint64(f.Meta.Index))
	w.uvarint(uint64(f.Meta.Day))
	w.varint(f.Meta.Probed)
	var deg byte
	if f.Meta.Degraded {
		deg = 1
	}
	w.byte(deg)
	w.uvarint(uint64(f.Meta.Records))
	w.uvarint(uint64(len(f.CloudName)))
	w.bytes([]byte(f.CloudName))
	w.uvarint(uint64(f.MinIP))
	w.uvarint(uint64(f.MaxIP))
	w.uvarint(uint64(len(f.Blocks)))
	for _, b := range f.Blocks {
		w.uvarint(uint64(len(b.Name)))
		w.bytes([]byte(b.Name))
		w.uvarint(uint64(b.Off))
		w.uvarint(uint64(b.CompLen))
		w.uvarint(uint64(b.RawLen))
	}
	return w.buf
}

// decodeFooter is the strict inverse of encodeFooter; any leftover or
// missing bytes are corruption.
func decodeFooter(buf []byte) (*segFooter, error) {
	r := &colReader{buf: buf, col: "footer"}
	f := &segFooter{}
	index, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	f.Meta.Index = int(index)
	day, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	f.Meta.Day = int(day)
	if f.Meta.Probed, err = r.varint(); err != nil {
		return nil, err
	}
	deg, err := r.byte()
	if err != nil {
		return nil, err
	}
	f.Meta.Degraded = deg != 0
	records, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	f.Meta.Records = int(records)
	nameLen, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	name, err := r.bytes(int(nameLen))
	if err != nil {
		return nil, err
	}
	f.CloudName = string(name)
	minIP, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	maxIP, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if minIP > 0xffffffff || maxIP > 0xffffffff {
		return nil, fmt.Errorf("%w: footer IP bound overflows 32 bits", store.ErrCorrupt)
	}
	f.MinIP, f.MaxIP = uint32(minIP), uint32(maxIP)
	nBlocks, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nBlocks > uint64(len(buf)) {
		return nil, fmt.Errorf("%w: footer claims %d blocks", store.ErrCorrupt, nBlocks)
	}
	f.Blocks = make([]blockInfo, nBlocks)
	for i := range f.Blocks {
		bnLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		bn, err := r.bytes(int(bnLen))
		if err != nil {
			return nil, err
		}
		off, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		compLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rawLen, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		f.Blocks[i] = blockInfo{
			Name:    string(bn),
			Off:     int64(off),
			CompLen: int64(compLen),
			RawLen:  int64(rawLen),
		}
	}
	if r.pos != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing footer bytes", store.ErrCorrupt, len(buf)-r.pos)
	}
	return f, nil
}

// block returns the named block's directory entry.
func (f *segFooter) block(name string) (blockInfo, error) {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b, nil
		}
	}
	return blockInfo{}, fmt.Errorf("%w: segment missing column %q", store.ErrCorrupt, name)
}

// decodeBlock decompresses one named block from full file contents.
func decodeBlock(data []byte, f *segFooter, name string) (*colReader, error) {
	b, err := f.block(name)
	if err != nil {
		return nil, err
	}
	raw, err := decompress(data[b.Off:b.Off+b.CompLen], int(b.RawLen))
	if err != nil {
		return nil, fmt.Errorf("%w: column %q: %v", store.ErrCorrupt, name, err)
	}
	return &colReader{buf: raw, col: name}, nil
}

// decodeIPColumn expands the (standalone-decodable) IP column.
func decodeIPColumn(raw []byte, n int) ([]uint32, error) {
	r := &colReader{buf: raw, col: ipCol}
	out := make([]uint32, n)
	prev := uint64(0)
	for i := 0; i < n; i++ {
		d, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		prev += d
		if prev > 0xffffffff {
			return nil, fmt.Errorf("%w: IP column overflows 32 bits", store.ErrCorrupt)
		}
		out[i] = uint32(prev)
	}
	return out, nil
}

// decodeSegment reconstructs the round's records from full file
// contents. Round and Day are reproduced from the footer meta (they
// are constant across a round and not stored per record).
func decodeSegment(data []byte, f *segFooter) ([]*store.Record, error) {
	n := f.Meta.Records
	// Dictionary first; every string column points into it.
	dr, err := decodeBlock(data, f, dictCol)
	if err != nil {
		return nil, err
	}
	nWords, err := dr.uvarint()
	if err != nil {
		return nil, err
	}
	words := make([]string, nWords)
	for i := range words {
		ln, err := dr.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := dr.bytes(int(ln))
		if err != nil {
			return nil, err
		}
		words[i] = string(b)
	}
	word := func(id uint64) (string, error) {
		if id >= uint64(len(words)) {
			return "", fmt.Errorf("%w: dictionary id %d of %d", store.ErrCorrupt, id, len(words))
		}
		return words[id], nil
	}

	readers := make(map[string]*colReader, len(colOrder())-1)
	for _, name := range colOrder() {
		if name == dictCol {
			continue
		}
		r, err := decodeBlock(data, f, name)
		if err != nil {
			return nil, err
		}
		readers[name] = r
	}

	ips, err := decodeIPColumn(readers[ipCol].buf, n)
	if err != nil {
		return nil, err
	}

	readStr := func(name string) (string, error) {
		id, err := readers[name].uvarint()
		if err != nil {
			return "", err
		}
		return word(id)
	}
	recs := make([]*store.Record, n)
	flat := make([]store.Record, n)
	for i := 0; i < n; i++ {
		rec := &flat[i]
		rec.IP = ipaddr.Addr(ips[i])
		rec.Round = f.Meta.Index
		rec.Day = f.Meta.Day
		if rec.OpenPorts, err = readers[portsCol].byte(); err != nil {
			return nil, err
		}
		flags, err := readers[flagsCol].byte()
		if err != nil {
			return nil, err
		}
		rec.Fetched = flags&flagFetched != 0
		rec.RobotsDenied = flags&flagRobots != 0
		rec.VPC = flags&flagVPC != 0
		if rec.Scheme, err = readStr(schemeCol); err != nil {
			return nil, err
		}
		status, err := readers[statusCol].uvarint()
		if err != nil {
			return nil, err
		}
		rec.HTTPStatus = int(status)
		if rec.FetchErr, err = readStr(fetchErrCol); err != nil {
			return nil, err
		}
		if rec.ContentType, err = readStr(ctypeCol); err != nil {
			return nil, err
		}
		bodyLen, err := readers[bodyLenCol].uvarint()
		if err != nil {
			return nil, err
		}
		rec.BodyLen = int(bodyLen)
		bl, err := readers[bodyCol].uvarint()
		if err != nil {
			return nil, err
		}
		body, err := readers[bodyCol].bytes(int(bl))
		if err != nil {
			return nil, err
		}
		rec.Body = string(body)
		if rec.PoweredBy, err = readStr(poweredCol); err != nil {
			return nil, err
		}
		if rec.Description, err = readStr(descCol); err != nil {
			return nil, err
		}
		if rec.HeaderNames, err = readStr(hdrCol); err != nil {
			return nil, err
		}
		if rec.Title, err = readStr(titleCol); err != nil {
			return nil, err
		}
		if rec.Template, err = readStr(templateCol); err != nil {
			return nil, err
		}
		if rec.Server, err = readStr(serverCol); err != nil {
			return nil, err
		}
		if rec.Keywords, err = readStr(keywordsCol); err != nil {
			return nil, err
		}
		if rec.AnalyticsID, err = readStr(gaCol); err != nil {
			return nil, err
		}
		sh, err := readers[simhashCol].bytes(12)
		if err != nil {
			return nil, err
		}
		rec.Simhash = simhash.Fingerprint{
			Hi: binary.BigEndian.Uint32(sh[:4]),
			Lo: binary.BigEndian.Uint64(sh[4:]),
		}
		nLinks, err := readers[linksCol].uvarint()
		if err != nil {
			return nil, err
		}
		// Zero-length slices decode to nil: gob encodes nil and empty
		// identically, so Save bytes — and digests — are unaffected.
		for j := uint64(0); j < nLinks; j++ {
			s, err := readStr(linksCol)
			if err != nil {
				return nil, err
			}
			rec.Links = append(rec.Links, s)
		}
		nTrackers, err := readers[trackersCol].uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < nTrackers; j++ {
			s, err := readStr(trackersCol)
			if err != nil {
				return nil, err
			}
			rec.Trackers = append(rec.Trackers, s)
		}
		sub, err := readers[subpagesCol].uvarint()
		if err != nil {
			return nil, err
		}
		rec.Subpages = int(sub)
		if rec.Cluster, err = readers[clusterCol].varint(); err != nil {
			return nil, err
		}
		recs[i] = rec
	}
	return recs, nil
}
