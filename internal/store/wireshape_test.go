package store

import (
	"encoding/json"
	"reflect"
	"sort"
	"testing"
)

// TestRecordJSONWireShape pins the coord submit-wire shape of Record:
// every exported field crosses the wire under its snake_case tag, not
// its Go identifier. The wiretag lint analyzer forces the tags to
// exist; this pins their spelling. Save/Digest use gob, which ignores
// tags, so this shape is independent of the on-disk format.
func TestRecordJSONWireShape(t *testing.T) {
	buf, err := json.Marshal(Record{})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	got := make([]string, 0, len(m))
	for k := range m {
		got = append(got, k)
	}
	sort.Strings(got)
	want := []string{
		"analytics_id", "body", "body_len", "cluster", "content_type",
		"day", "description", "fetch_err", "fetched", "header_names",
		"http_status", "ip", "keywords", "links", "open_ports",
		"powered_by", "robots_denied", "round", "scheme", "server",
		"simhash", "subpages", "template", "title", "trackers", "vpc",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Record wire keys = %v\nwant %v", got, want)
	}
}

// TestRecordJSONRoundTrip pins that a tagged Record survives the
// submit wire intact.
func TestRecordJSONRoundTrip(t *testing.T) {
	in := Record{
		IP:         0x0A000001,
		Round:      3,
		Day:        7,
		OpenPorts:  PortSSH | PortHTTP,
		Fetched:    true,
		HTTPStatus: 200,
		Scheme:     "http",
		Title:      "hello",
		Links:      []string{"http://example.com/a"},
		Cluster:    42,
	}
	buf, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var out Record
	if err := json.Unmarshal(buf, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the record:\n in %+v\nout %+v", in, out)
	}
}
