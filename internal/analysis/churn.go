package analysis

import (
	"fmt"
	"strings"

	"whowas/internal/ipaddr"
	"whowas/internal/store"
)

// ChurnPoint is one round-to-round churn measurement (Figure 9).
type ChurnPoint struct {
	Round int // the later round T (compared against T-1)
	Day   int
	// Fractions of all probed IPs whose status changed (the paper's
	// primary denominator).
	Responsiveness float64 // responsive <-> unresponsive flips
	Availability   float64 // available <-> unavailable flips
	ClusterChange  float64 // IPs whose cluster assignment changed
	Overall        float64 // any of the above
	// Fractions relative to the unique IPs responsive in either round
	// (the paper's secondary denominator: 11.9% EC2 / 12.2% Azure).
	RelResponsiveness float64
	RelAvailability   float64
	RelClusterChange  float64
	RelOverall        float64
}

// ChurnSummary aggregates the per-round series.
type ChurnSummary struct {
	Points []ChurnPoint
	// Averages across rounds.
	AvgResponsiveness, AvgAvailability, AvgClusterChange, AvgOverall             float64
	AvgRelResponsiveness, AvgRelAvailability, AvgRelClusterChange, AvgRelOverall float64
}

// Churn computes the §8.1 IP-status churn between consecutive rounds.
func Churn(st *store.Store) *ChurnSummary {
	out := &ChurnSummary{}
	// Sliding two-round window: consecutive-round comparison needs prev
	// and cur together but never more, so the fold stays within the
	// lazy backends' decoded-round cache.
	var prev *store.Round
	st.EachRound(func(cur *store.Round) bool {
		if prev == nil {
			prev = cur
			return true
		}
		probed := cur.Probed
		if probed == 0 {
			probed = prev.Probed
		}
		var respFlips, availFlips, clustFlips, anyFlips float64
		// Union of IPs appearing in either round; IPs in neither are
		// unresponsive both times and cannot have changed.
		seen := map[ipaddr.Addr]bool{}
		var uniqueResponsive float64
		consider := func(rec *store.Record) {
			ip := rec.IP
			if seen[ip] {
				return
			}
			seen[ip] = true
			a := prev.Get(ip)
			b := cur.Get(ip)
			respA, respB := a != nil && a.Responsive(), b != nil && b.Responsive()
			availA, availB := a != nil && a.Available(), b != nil && b.Available()
			var clustA, clustB int64
			if a != nil {
				clustA = a.Cluster
			}
			if b != nil {
				clustB = b.Cluster
			}
			if respA || respB {
				uniqueResponsive++
			}
			changed := false
			if respA != respB {
				respFlips++
				changed = true
			}
			if availA != availB {
				availFlips++
				changed = true
			}
			// Cluster change only counts when both rounds carry an
			// assignment and they differ (an appearance/disappearance
			// is already availability churn).
			if clustA != 0 && clustB != 0 && clustA != clustB {
				clustFlips++
				changed = true
			}
			if changed {
				anyFlips++
			}
		}
		prev.Each(func(rec *store.Record) bool { consider(rec); return true })
		cur.Each(func(rec *store.Record) bool { consider(rec); return true })

		p := ChurnPoint{Round: cur.Index, Day: cur.Day}
		if probed > 0 {
			d := float64(probed)
			p.Responsiveness = respFlips / d
			p.Availability = availFlips / d
			p.ClusterChange = clustFlips / d
			p.Overall = anyFlips / d
		}
		if uniqueResponsive > 0 {
			p.RelResponsiveness = respFlips / uniqueResponsive
			p.RelAvailability = availFlips / uniqueResponsive
			p.RelClusterChange = clustFlips / uniqueResponsive
			p.RelOverall = anyFlips / uniqueResponsive
		}
		out.Points = append(out.Points, p)
		prev = cur
		return true
	})
	n := float64(len(out.Points))
	if n == 0 {
		return out
	}
	for _, p := range out.Points {
		out.AvgResponsiveness += p.Responsiveness / n
		out.AvgAvailability += p.Availability / n
		out.AvgClusterChange += p.ClusterChange / n
		out.AvgOverall += p.Overall / n
		out.AvgRelResponsiveness += p.RelResponsiveness / n
		out.AvgRelAvailability += p.RelAvailability / n
		out.AvgRelClusterChange += p.RelClusterChange / n
		out.AvgRelOverall += p.RelOverall / n
	}
	return out
}

// Format renders the Figure 9 summary and series.
func (c *ChurnSummary) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 9 (%s): per-round status churn, %% of all probed IPs\n", cloud)
	fmt.Fprintf(&sb, "  averages: responsiveness %.1f%%  availability %.1f%%  cluster %.2f%%  overall %.1f%%\n",
		100*c.AvgResponsiveness, 100*c.AvgAvailability, 100*c.AvgClusterChange, 100*c.AvgOverall)
	fmt.Fprintf(&sb, "  relative to responsive IPs: responsiveness %.1f%%  availability %.1f%%  cluster %.1f%%  overall %.1f%%\n",
		100*c.AvgRelResponsiveness, 100*c.AvgRelAvailability, 100*c.AvgRelClusterChange, 100*c.AvgRelOverall)
	fmt.Fprintf(&sb, "  %-6s %-5s %12s %12s\n", "round", "day", "resp-churn%", "avail-churn%")
	for _, p := range c.Points {
		fmt.Fprintf(&sb, "  %-6d %-5d %12.2f %12.2f\n", p.Round, p.Day, 100*p.Responsiveness, 100*p.Availability)
	}
	return sb.String()
}
