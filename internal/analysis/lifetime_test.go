package analysis

import (
	"strings"
	"testing"

	"whowas/internal/cluster"
	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
)

// mkCluster fabricates a cluster from (round, ips...) observations.
func mkCluster(id int64, obs map[int][]string) *cluster.Cluster {
	c := &cluster.Cluster{ID: id}
	for round, ips := range obs {
		for _, ip := range ips {
			c.Records = append(c.Records, &store.Record{
				IP:         ipaddr.MustParseAddr(ip),
				Round:      round,
				Day:        round * 2,
				OpenPorts:  store.PortHTTP,
				HTTPStatus: 200,
			})
		}
	}
	return c
}

func TestClusterUptimes(t *testing.T) {
	res := &cluster.Result{Clusters: []*cluster.Cluster{
		// Singleton, full uptime over rounds 0..3.
		mkCluster(1, map[int][]string{0: {"1.0.0.1"}, 1: {"1.0.0.1"}, 2: {"1.0.0.1"}, 3: {"1.0.0.1"}}),
		// Singleton with a gap: 3 of 4 spanned rounds = 75% uptime.
		mkCluster(2, map[int][]string{0: {"2.0.0.1"}, 2: {"2.0.0.1"}, 3: {"2.0.0.1"}}),
		// Size-2, full uptime.
		mkCluster(3, map[int][]string{0: {"3.0.0.1", "3.0.0.2"}, 1: {"3.0.0.1", "3.0.0.2"}}),
	}}
	stats := ClusterUptimes(res)
	if stats.SingletonFull != 0.5 {
		t.Errorf("SingletonFull = %v, want 0.5", stats.SingletonFull)
	}
	if stats.Singleton80 != 0.5 { // the gapped one is at 75%
		t.Errorf("Singleton80 = %v, want 0.5", stats.Singleton80)
	}
	if stats.Size2Full != 1.0 {
		t.Errorf("Size2Full = %v", stats.Size2Full)
	}
	if stats.LowUptimeFrac < 0.3 || stats.LowUptimeFrac > 0.34 { // 1 of 3 below 90%
		t.Errorf("LowUptimeFrac = %v, want 1/3", stats.LowUptimeFrac)
	}
	if out := stats.Format("x"); !strings.Contains(out, "singletons") {
		t.Error("Format output broken")
	}
}

func TestRegionChanges(t *testing.T) {
	regionOf := func(a ipaddr.Addr) string {
		if a>>24 == 9 {
			return "r2"
		}
		return "r1"
	}
	res := &cluster.Result{Clusters: []*cluster.Cluster{
		// Stays in r1 the whole time.
		mkCluster(1, map[int][]string{0: {"1.0.0.1"}, 1: {"1.0.0.1"}, 2: {"1.0.0.1"}, 3: {"1.0.0.1"}}),
		// Adds r2 in the second half (the split point is round 2, so
		// only round 3 counts as "late").
		mkCluster(2, map[int][]string{0: {"2.0.0.1"}, 1: {"2.0.0.1"}, 2: {"2.0.0.1"}, 3: {"2.0.0.1", "9.0.0.2"}}),
	}}
	stats := RegionChanges(res, regionOf)
	if stats.Total != 2 {
		t.Fatalf("Total = %d", stats.Total)
	}
	if stats.Same != 0.5 || stats.PlusOne != 0.5 {
		t.Errorf("stats = %+v", stats)
	}
	if RegionChanges(res, nil).Total != 0 {
		t.Error("nil regionOf should yield empty stats")
	}
}

func TestVPCTransitions(t *testing.T) {
	mk := func(id int64, vpcByRound map[int]bool) *cluster.Cluster {
		c := &cluster.Cluster{ID: id}
		for round := 0; round < 6; round++ {
			c.Records = append(c.Records, &store.Record{
				IP:         ipaddr.Addr(uint32(id)<<16 | uint32(round)),
				Round:      round,
				HTTPStatus: 200,
				OpenPorts:  store.PortHTTP,
				VPC:        vpcByRound[round],
			})
		}
		return c
	}
	res := &cluster.Result{Clusters: []*cluster.Cluster{
		mk(1, map[int]bool{0: false, 1: false, 2: false, 3: true, 4: true, 5: true}), // classic -> VPC
		mk(2, map[int]bool{0: true, 1: true, 2: true, 3: false, 4: false, 5: false}), // VPC -> classic
		mk(3, map[int]bool{0: false, 1: false, 2: false, 3: false, 4: false, 5: false}),
	}}
	stats := VPCTransitions(res)
	if stats.ClassicToVPC != 1 || stats.VPCToClassic != 1 {
		t.Errorf("transitions = %+v", stats)
	}
}

func TestLinchpins(t *testing.T) {
	s := store.New("test")
	_, _ = s.BeginRound(0)
	// A linchpin page carrying 25 flagged URLs over 3 domains.
	var links []string
	for i := 0; i < 25; i++ {
		links = append(links, "http://evil"+string(rune('a'+i%3))+".example/p"+string(rune('0'+i%10)))
	}
	_ = s.Put(&store.Record{
		IP: ipaddr.MustParseAddr("1.0.0.1"), OpenPorts: store.PortHTTP,
		HTTPStatus: 200, Links: links, Simhash: simhash.Hash("linchpin"),
	})
	// An ordinary page with two flagged URLs.
	_ = s.Put(&store.Record{
		IP: ipaddr.MustParseAddr("1.0.0.2"), OpenPorts: store.PortHTTP,
		HTTPStatus: 200, Links: links[:2], Simhash: simhash.Hash("ordinary"),
	})
	_ = s.EndRound()

	flagged := func(url string, day int) bool { return strings.Contains(url, "evil") }
	lps := Linchpins(s, 20, flagged)
	if len(lps) != 1 {
		t.Fatalf("linchpins = %+v", lps)
	}
	if lps[0].IP != ipaddr.MustParseAddr("1.0.0.1") || lps[0].MaxURLs != 25 || lps[0].Domains != 3 {
		t.Errorf("linchpin = %+v", lps[0])
	}
	if out := FormatLinchpins("x", lps); !strings.Contains(out, "1.0.0.1") {
		t.Error("FormatLinchpins output broken")
	}
}

func TestDomainOfHelper(t *testing.T) {
	cases := map[string]string{
		"http://a.example/p":      "a.example",
		"https://b.example:8080/": "b.example",
		"bare.example/path":       "bare.example",
		"":                        "",
	}
	for in, want := range cases {
		if got := domainOf(in); got != want {
			t.Errorf("domainOf(%q) = %q, want %q", in, got, want)
		}
	}
}
