package analysis

import (
	"fmt"
	"sort"
	"strings"

	"whowas/internal/cluster"
	"whowas/internal/ipaddr"
	"whowas/internal/store"
)

// VPCSeries is Figure 13: responsive and available IP counts per
// round, split by the cartography's VPC/classic labels.
type VPCSeries struct {
	Rounds            []int
	ClassicResponsive []int
	ClassicAvailable  []int
	VPCResponsive     []int
	VPCAvailable      []int
}

// VPCUsage computes Figure 13 (requires cartography labels on the
// records).
func VPCUsage(st *store.Store) VPCSeries {
	var out VPCSeries
	st.EachRound(func(r *store.Round) bool {
		var cr, ca, vr, va int
		r.Each(func(rec *store.Record) bool {
			if rec.VPC {
				if rec.Responsive() {
					vr++
				}
				if rec.Available() {
					va++
				}
			} else {
				if rec.Responsive() {
					cr++
				}
				if rec.Available() {
					ca++
				}
			}
			return true
		})
		out.Rounds = append(out.Rounds, r.Index)
		out.ClassicResponsive = append(out.ClassicResponsive, cr)
		out.ClassicAvailable = append(out.ClassicAvailable, ca)
		out.VPCResponsive = append(out.VPCResponsive, vr)
		out.VPCAvailable = append(out.VPCAvailable, va)
		return true
	})
	return out
}

// Format renders Figure 13.
func (v VPCSeries) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 13 (%s): responsive/available IPs by networking type per round\n", cloud)
	fmt.Fprintf(&sb, "  %-6s %12s %12s %12s %12s\n", "round", "classic-resp", "classic-avail", "vpc-resp", "vpc-avail")
	for i, r := range v.Rounds {
		fmt.Fprintf(&sb, "  %-6d %12d %12d %12d %12d\n", r,
			v.ClassicResponsive[i], v.ClassicAvailable[i], v.VPCResponsive[i], v.VPCAvailable[i])
	}
	return sb.String()
}

// VPCClusterKind classifies a cluster's networking usage (§8.1:
// classic-only 72.9%, VPC-only 24.5%, mixed 2.6%).
type VPCClusterKind int

// Cluster networking classes.
const (
	ClassicOnly VPCClusterKind = iota
	VPCOnly
	Mixed
)

// VPCClusterSeries is Figure 14: per-round counts of clusters by
// networking class, plus the overall class totals.
type VPCClusterSeries struct {
	Rounds      []int
	ClassicOnly []int
	VPCOnly     []int
	Mixed       []int
	// Overall classification of every cluster across the campaign.
	TotalClassicOnly, TotalVPCOnly, TotalMixed int
}

// VPCClusters computes Figure 14.
func VPCClusters(st *store.Store, res *cluster.Result) VPCClusterSeries {
	var out VPCClusterSeries
	nRounds := st.NumRounds()
	// Per cluster per round: does it use VPC IPs, classic IPs, both?
	type usage struct{ classic, vpc bool }
	perRound := make([]map[int64]usage, nRounds)
	for i := range perRound {
		perRound[i] = map[int64]usage{}
	}
	overall := map[int64]usage{}
	for _, c := range res.Clusters {
		for _, rec := range c.Records {
			u := perRound[rec.Round][c.ID]
			o := overall[c.ID]
			if rec.VPC {
				u.vpc = true
				o.vpc = true
			} else {
				u.classic = true
				o.classic = true
			}
			perRound[rec.Round][c.ID] = u
			overall[c.ID] = o
		}
	}
	for r := 0; r < nRounds; r++ {
		var co, vo, mx int
		for _, u := range perRound[r] {
			switch {
			case u.classic && u.vpc:
				mx++
			case u.vpc:
				vo++
			default:
				co++
			}
		}
		out.Rounds = append(out.Rounds, r)
		out.ClassicOnly = append(out.ClassicOnly, co)
		out.VPCOnly = append(out.VPCOnly, vo)
		out.Mixed = append(out.Mixed, mx)
	}
	for _, u := range overall {
		switch {
		case u.classic && u.vpc:
			out.TotalMixed++
		case u.vpc:
			out.TotalVPCOnly++
		default:
			out.TotalClassicOnly++
		}
	}
	return out
}

// Format renders Figure 14.
func (v VPCClusterSeries) Format(cloud string) string {
	var sb strings.Builder
	total := v.TotalClassicOnly + v.TotalVPCOnly + v.TotalMixed
	fmt.Fprintf(&sb, "Figure 14 (%s): clusters by networking type per round\n", cloud)
	fmt.Fprintf(&sb, "  overall: classic-only %d (%.1f%%)  vpc-only %d (%.1f%%)  mixed %d (%.1f%%)\n",
		v.TotalClassicOnly, pct(v.TotalClassicOnly, total),
		v.TotalVPCOnly, pct(v.TotalVPCOnly, total),
		v.TotalMixed, pct(v.TotalMixed, total))
	fmt.Fprintf(&sb, "  %-6s %13s %9s %7s\n", "round", "classic-only", "vpc-only", "mixed")
	for i, r := range v.Rounds {
		fmt.Fprintf(&sb, "  %-6d %13d %9d %7d\n", r, v.ClassicOnly[i], v.VPCOnly[i], v.Mixed[i])
	}
	return sb.String()
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// VPCPrefixRow is one row of Table 2.
type VPCPrefixRow struct {
	Region      string
	VPCPrefixes int
	PctOfRegion float64 // VPC IPs as % of the region's IPs
}

// VPCPrefixTable builds Table 2 from a measured set of VPC /22
// prefixes. prefixRegion maps a /22 network address to its region;
// regionSizes gives each region's total /22 count.
func VPCPrefixTable(vpcPrefixes map[ipaddr.Addr]bool, prefixRegion func(ipaddr.Addr) string, regionSizes map[string]int) []VPCPrefixRow {
	counts := map[string]int{}
	for p, isVPC := range vpcPrefixes {
		if isVPC {
			counts[prefixRegion(p)]++
		}
	}
	var rows []VPCPrefixRow
	for region, n := range counts {
		total := regionSizes[region]
		row := VPCPrefixRow{Region: region, VPCPrefixes: n}
		if total > 0 {
			row.PctOfRegion = 100 * float64(n) / float64(total)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].VPCPrefixes != rows[j].VPCPrefixes {
			return rows[i].VPCPrefixes > rows[j].VPCPrefixes
		}
		return rows[i].Region < rows[j].Region
	})
	return rows
}

// FormatVPCPrefixes renders Table 2.
func FormatVPCPrefixes(rows []VPCPrefixRow) string {
	var sb strings.Builder
	sb.WriteString("Table 2: VPC /22 prefixes by region\n")
	fmt.Fprintf(&sb, "  %-16s %12s %16s\n", "Region", "VPC prefixes", "% of region IPs")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-16s %12d %15.1f%%\n", r.Region, r.VPCPrefixes, r.PctOfRegion)
	}
	return sb.String()
}
