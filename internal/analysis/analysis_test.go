package analysis

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"whowas/internal/cluster"
	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
)

// rec builds a record with sensible defaults for analysis fixtures.
func rec(ip string, ports uint8, status int, mutate ...func(*store.Record)) *store.Record {
	r := &store.Record{
		IP:         ipaddr.MustParseAddr(ip),
		OpenPorts:  ports,
		HTTPStatus: status,
	}
	if status != 0 {
		r.ContentType = "text/html"
		r.Title = "Site " + ip
		r.Server = "nginx"
		r.Simhash = simhash.Hash("content of site " + ip)
		r.BodyLen = 100
	}
	for _, m := range mutate {
		m(r)
	}
	return r
}

// mkStore builds a store with given days and per-round record sets,
// also setting Probed.
func mkStore(t *testing.T, probed int64, days []int, rounds [][]*store.Record) *store.Store {
	t.Helper()
	s := store.New("test")
	for i, recs := range rounds {
		if _, err := s.BeginRound(days[i]); err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			cp := *r
			if err := s.Put(&cp); err != nil {
				t.Fatal(err)
			}
		}
		s.AddProbed(probed)
		if err := s.EndRound(); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestUsageSummary(t *testing.T) {
	web := uint8(store.PortHTTP)
	st := mkStore(t, 100, []int{0, 3, 6}, [][]*store.Record{
		{rec("1.0.0.1", web, 200), rec("1.0.0.2", store.PortSSH, 0)},
		{rec("1.0.0.1", web, 200), rec("1.0.0.2", store.PortSSH, 0), rec("1.0.0.3", web, 404)},
		{rec("1.0.0.1", web, 200), rec("1.0.0.3", web, 404), rec("1.0.0.4", web, 200), rec("1.0.0.5", store.PortSSH, 0)},
	})
	u := Usage(st)
	if u.Probed != 100 {
		t.Errorf("Probed = %d", u.Probed)
	}
	wantResp := []float64{2, 3, 4}
	wantAvail := []float64{1, 2, 3}
	for i := range wantResp {
		if u.RespSeries[i] != wantResp[i] || u.AvailSeries[i] != wantAvail[i] {
			t.Errorf("round %d: resp=%v avail=%v", i, u.RespSeries[i], u.AvailSeries[i])
		}
	}
	if u.Responsive.Mean != 3 || u.Responsive.Min != 2 || u.Responsive.Max != 4 {
		t.Errorf("responsive stats = %+v", u.Responsive)
	}
	if math.Abs(u.GrowthResp-1.0) > 1e-9 { // 2 -> 4
		t.Errorf("GrowthResp = %v", u.GrowthResp)
	}
	if !strings.Contains(u.Format("test"), "Table 7") {
		t.Error("Format missing header")
	}
}

func TestPortsTable3(t *testing.T) {
	st := mkStore(t, 10, []int{0}, [][]*store.Record{{
		rec("1.0.0.1", store.PortSSH, 0),
		rec("1.0.0.2", store.PortHTTP, 200),
		rec("1.0.0.3", store.PortHTTPS, 200),
		rec("1.0.0.4", store.PortHTTP|store.PortHTTPS, 200),
	}})
	p := Ports(st)
	if p.SSHOnly != 0.25 || p.HTTPOnly != 0.25 || p.HTTPSOnly != 0.25 || p.Both != 0.25 {
		t.Errorf("Ports = %+v", p)
	}
}

func TestStatusesTable4(t *testing.T) {
	web := uint8(store.PortHTTP)
	st := mkStore(t, 10, []int{0}, [][]*store.Record{{
		rec("1.0.0.1", web, 200),
		rec("1.0.0.2", web, 200),
		rec("1.0.0.3", web, 404),
		rec("1.0.0.4", web, 503),
		rec("1.0.0.5", store.PortSSH, 0), // no response: not in denominator
	}})
	s := Statuses(st)
	if s.OK200 != 0.5 || s.C4xx != 0.25 || s.C5xx != 0.25 || s.Other != 0 {
		t.Errorf("Statuses = %+v", s)
	}
}

func TestContentTypesTable5(t *testing.T) {
	web := uint8(store.PortHTTP)
	st := mkStore(t, 10, []int{0}, [][]*store.Record{{
		rec("1.0.0.1", web, 200, func(r *store.Record) { r.ContentType = "text/html" }),
		rec("1.0.0.2", web, 200, func(r *store.Record) { r.ContentType = "text/html" }),
		rec("1.0.0.3", web, 200, func(r *store.Record) { r.ContentType = "text/plain" }),
		rec("1.0.0.4", web, 200, func(r *store.Record) { r.ContentType = "application/json" }),
	}})
	shares := ContentTypes(st, 2)
	if shares[0].Type != "text/html" || math.Abs(shares[0].Share-0.5) > 1e-9 {
		t.Errorf("top content type = %+v", shares[0])
	}
	// topN=2 folds the rest into "other".
	if shares[len(shares)-1].Type != "other" {
		t.Errorf("missing other bucket: %+v", shares)
	}
}

func TestChurnFigure9(t *testing.T) {
	web := uint8(store.PortHTTP)
	// Round 0: A responsive+available, B responsive only, C absent.
	// Round 1: A gone (resp+avail flip), B available now (avail flip),
	//          C appears responsive (resp flip).
	st := mkStore(t, 100, []int{0, 3}, [][]*store.Record{
		{
			rec("1.0.0.1", web, 200),
			rec("1.0.0.2", store.PortSSH, 0),
		},
		{
			rec("1.0.0.2", web, 200),
			rec("1.0.0.3", store.PortSSH, 0),
		},
	})
	c := Churn(st)
	if len(c.Points) != 1 {
		t.Fatalf("points = %d", len(c.Points))
	}
	p := c.Points[0]
	// Flips: responsiveness: A (2->gone... A responsive r0, absent r1)
	// = 1 flip; C 1 flip. B stays responsive. Total resp flips = 2.
	if math.Abs(p.Responsiveness-0.02) > 1e-9 {
		t.Errorf("Responsiveness = %v, want 0.02", p.Responsiveness)
	}
	// Availability flips: A (avail->un) and B (un->avail) = 2.
	if math.Abs(p.Availability-0.02) > 1e-9 {
		t.Errorf("Availability = %v, want 0.02", p.Availability)
	}
	// Unique responsive IPs in either round: A, B, C = 3.
	if math.Abs(p.RelResponsiveness-2.0/3) > 1e-9 {
		t.Errorf("RelResponsiveness = %v", p.RelResponsiveness)
	}
}

func TestChurnClusterChange(t *testing.T) {
	web := uint8(store.PortHTTP)
	withCluster := func(id int64) func(*store.Record) {
		return func(r *store.Record) { r.Cluster = id }
	}
	st := mkStore(t, 100, []int{0, 3}, [][]*store.Record{
		{rec("1.0.0.1", web, 200, withCluster(1)), rec("1.0.0.2", web, 200, withCluster(2))},
		{rec("1.0.0.1", web, 200, withCluster(1)), rec("1.0.0.2", web, 200, withCluster(3))},
	})
	c := Churn(st)
	if math.Abs(c.Points[0].ClusterChange-0.01) > 1e-9 {
		t.Errorf("ClusterChange = %v, want 0.01", c.Points[0].ClusterChange)
	}
	// No responsiveness or availability churn in this fixture.
	if c.Points[0].Responsiveness != 0 || c.Points[0].Availability != 0 {
		t.Errorf("unexpected churn: %+v", c.Points[0])
	}
}

// clusterFixture builds a store + clustering result with two clusters:
// one stable 2-IP cluster and one flickering singleton.
func clusterFixture(t *testing.T) (*store.Store, *cluster.Result) {
	t.Helper()
	web := uint8(store.PortHTTP)
	stable := func(ip string) *store.Record {
		return rec(ip, web, 200, func(r *store.Record) {
			r.Title = "Stable"
			r.Simhash = simhash.Hash("stable cluster content shared by both addresses")
		})
	}
	flicker := func() *store.Record {
		return rec("2.0.0.1", web, 200, func(r *store.Record) {
			r.Title = "Flicker"
			r.Simhash = simhash.Hash("flickering singleton content")
		})
	}
	st := mkStore(t, 100, []int{0, 3, 6, 9}, [][]*store.Record{
		{stable("1.0.0.1"), stable("1.0.0.2"), flicker()},
		{stable("1.0.0.1"), stable("1.0.0.2")},
		{stable("1.0.0.1"), stable("1.0.0.2"), flicker()},
		{stable("1.0.0.1"), stable("1.0.0.2"), flicker()},
	})
	res, err := cluster.Run(st, cluster.Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final != 2 {
		t.Fatalf("fixture clusters = %d, want 2", res.Final)
	}
	return st, res
}

func TestClusteringSummaryTable6(t *testing.T) {
	st, res := clusterFixture(t)
	sum := Clustering(st, res)
	if sum.ResponsiveIPs != 3 {
		t.Errorf("ResponsiveIPs = %d, want 3", sum.ResponsiveIPs)
	}
	if sum.Final != 2 || sum.TopLevel != 2 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.UniqueSimhashes != 2 {
		t.Errorf("UniqueSimhashes = %d, want 2", sum.UniqueSimhashes)
	}
}

func TestSizesMix(t *testing.T) {
	_, res := clusterFixture(t)
	mix := Sizes(res)
	if mix.Total != 2 {
		t.Fatalf("Total = %d", mix.Total)
	}
	if mix.Singleton != 0.5 || mix.Small != 0.5 {
		t.Errorf("mix = %+v", mix)
	}
}

func TestClusterAvailabilityFigure10(t *testing.T) {
	st, res := clusterFixture(t)
	av := ClusterAvailability(st, res)
	if len(av.Points) != 3 {
		t.Fatalf("points = %d", len(av.Points))
	}
	// Flicker cluster: present r0, absent r1, present r2, present r3:
	// flips at r1 and r2 -> 1/2 of clusters each; none at r3.
	want := []float64{0.5, 0.5, 0}
	for i, p := range av.Points {
		if math.Abs(p.Y-want[i]) > 1e-9 {
			t.Errorf("round %d change = %v, want %v", i+1, p.Y, want[i])
		}
	}
}

func TestIPUptimesFigure12(t *testing.T) {
	st, res := clusterFixture(t)
	_ = st
	u := IPUptimes(res)
	// Only the 2-IP cluster enters the CDF; both IPs present in all 4
	// of its available rounds -> avg uptime 100%.
	if u.CDF.N() != 1 {
		t.Fatalf("CDF n = %d", u.CDF.N())
	}
	if got := u.CDF.Quantile(0.5); got != 100 {
		t.Errorf("uptime = %v, want 100", got)
	}
	if u.FullUptimeFrac != 1.0 { // both clusters use stable IP sets
		t.Errorf("FullUptimeFrac = %v", u.FullUptimeFrac)
	}
	if u.SingletonFrac != 0.5 {
		t.Errorf("SingletonFrac = %v", u.SingletonFrac)
	}
}

func TestTopClustersTable15(t *testing.T) {
	st, res := clusterFixture(t)
	_ = st
	rows := TopClusters(res, 2, func(ipaddr.Addr) string { return "r1" })
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	top := rows[0]
	if top.TotalIPs != 2 || top.MeanIPs != 2 || top.MinIPs != 2 || top.MaxIPs != 2 {
		t.Errorf("top row = %+v", top)
	}
	if top.AvgUptime != 100 || top.StableIPs != 100 || top.MaxDeparture != 0 {
		t.Errorf("top row churn stats = %+v", top)
	}
	if top.Regions != 1 {
		t.Errorf("Regions = %d", top.Regions)
	}
}

func TestRegionsSingleShare(t *testing.T) {
	_, res := clusterFixture(t)
	ru := Regions(res, func(a ipaddr.Addr) string {
		// Put the two stable IPs in different regions.
		if a == ipaddr.MustParseAddr("1.0.0.2") {
			return "r2"
		}
		return "r1"
	})
	if ru.Total != 2 {
		t.Fatalf("Total = %d", ru.Total)
	}
	if ru.SingleRegion != 0.5 {
		t.Errorf("SingleRegion = %v", ru.SingleRegion)
	}
}

func TestSizePatternsTable11(t *testing.T) {
	web := uint8(store.PortHTTP)
	mk := func(ip, title string) *store.Record {
		return rec(ip, web, 200, func(r *store.Record) {
			r.Title = title
			r.Simhash = simhash.Hash("content for " + title)
		})
	}
	// Cluster "Grow" absent for the first half, present after: 0,1,0.
	// Cluster "Flat" present throughout: 0.
	days := []int{0, 7, 14, 21, 28, 35, 42, 49}
	var rounds [][]*store.Record
	for i := range days {
		var recs []*store.Record
		recs = append(recs, mk("1.0.0.1", "Flat"))
		if i >= 4 {
			recs = append(recs, mk("2.0.0.1", "Grow"))
		}
		rounds = append(rounds, recs)
	}
	st := mkStore(t, 100, days, rounds)
	res, err := cluster.Run(st, cluster.Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	pt := SizePatterns(st, res, 56)
	got := map[string]int{}
	for _, r := range pt.Rows {
		got[r.Pattern] = r.Count
	}
	if got["0"] != 1 {
		t.Errorf("flat pattern count = %d (%+v)", got["0"], pt.Rows)
	}
	if got["0,1"]+got["0,1,0"] != 1 {
		t.Errorf("grow pattern missing: %+v", pt.Rows)
	}
}

func TestCrossCloudOverlap(t *testing.T) {
	mkRes := func(gaIDs ...string) *cluster.Result {
		res := &cluster.Result{}
		for i, id := range gaIDs {
			res.Clusters = append(res.Clusters, &cluster.Cluster{ID: int64(i + 1), AnalyticsID: id})
		}
		return res
	}
	a := mkRes("UA-1-1", "UA-2-1", "")
	b := mkRes("UA-2-1", "UA-3-1")
	if got := CrossCloudOverlap(a, b); got != 1 {
		t.Errorf("overlap = %d, want 1", got)
	}
}

func TestVPCUsageFigure13(t *testing.T) {
	web := uint8(store.PortHTTP)
	vpcRec := func(ip string) *store.Record {
		return rec(ip, web, 200, func(r *store.Record) { r.VPC = true })
	}
	st := mkStore(t, 100, []int{0, 3}, [][]*store.Record{
		{rec("1.0.0.1", web, 200), vpcRec("2.0.0.1")},
		{rec("1.0.0.1", web, 200), vpcRec("2.0.0.1"), vpcRec("2.0.0.2")},
	})
	v := VPCUsage(st)
	if v.VPCResponsive[0] != 1 || v.VPCResponsive[1] != 2 || v.ClassicResponsive[0] != 1 {
		t.Errorf("VPC series = %+v", v)
	}
}

func TestVPCClustersFigure14(t *testing.T) {
	web := uint8(store.PortHTTP)
	mk := func(ip, title string, vpc bool) *store.Record {
		return rec(ip, web, 200, func(r *store.Record) {
			r.Title = title
			r.VPC = vpc
			r.Simhash = simhash.Hash("body " + title)
		})
	}
	st := mkStore(t, 100, []int{0}, [][]*store.Record{{
		mk("1.0.0.1", "ClassicSite", false),
		mk("2.0.0.1", "VPCSite", true),
		mk("3.0.0.1", "MixedSite", false),
		mk("3.0.0.2", "MixedSite", true),
	}})
	res, err := cluster.Run(st, cluster.Config{Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	v := VPCClusters(st, res)
	if v.TotalClassicOnly != 1 || v.TotalVPCOnly != 1 || v.TotalMixed != 1 {
		t.Errorf("totals = %d/%d/%d", v.TotalClassicOnly, v.TotalVPCOnly, v.TotalMixed)
	}
}

func TestVPCPrefixTable2(t *testing.T) {
	vpc := map[ipaddr.Addr]bool{
		ipaddr.MustParseAddr("10.0.0.0"): true,
		ipaddr.MustParseAddr("10.0.4.0"): true,
		ipaddr.MustParseAddr("10.1.0.0"): false,
	}
	rows := VPCPrefixTable(vpc,
		func(a ipaddr.Addr) string { return "us-east-1" },
		map[string]int{"us-east-1": 8})
	if len(rows) != 1 || rows[0].VPCPrefixes != 2 || rows[0].PctOfRegion != 25 {
		t.Errorf("rows = %+v", rows)
	}
}

func TestCensusBasics(t *testing.T) {
	web := uint8(store.PortHTTP)
	mk := func(ip, server, backend, template string) *store.Record {
		return rec(ip, web, 200, func(r *store.Record) {
			r.Server = server
			r.PoweredBy = backend
			r.Template = template
		})
	}
	st := mkStore(t, 10, []int{0}, [][]*store.Record{{
		mk("1.0.0.1", "Apache/2.2.22 (Ubuntu)", "PHP/5.3.10", "WordPress 3.5.1"),
		mk("1.0.0.2", "Apache/2.4.7 (Ubuntu)", "PHP/5.4.23", "WordPress 3.8"),
		mk("1.0.0.3", "nginx/1.4.1", "", ""),
		mk("1.0.0.4", "", "", ""),
	}})
	c := Census(st)
	if c.IdentifiedServerFrac != 0.75 {
		t.Errorf("IdentifiedServerFrac = %v", c.IdentifiedServerFrac)
	}
	if c.ServerFamilies[0].Name != "Apache" || math.Abs(c.ServerFamilies[0].Share-2.0/3) > 1e-9 {
		t.Errorf("top server = %+v", c.ServerFamilies[0])
	}
	if c.BackendFamilies[0].Name != "PHP" || c.BackendFamilies[0].Share != 1.0 {
		t.Errorf("top backend = %+v", c.BackendFamilies[0])
	}
	if c.VulnerableWordPress != 0.5 { // 3.5.1 below 3.6, 3.8 not
		t.Errorf("VulnerableWordPress = %v", c.VulnerableWordPress)
	}
	foundVersion := false
	for _, v := range c.ApacheVersions {
		if v.Name == "Apache/2.2.22" {
			foundVersion = true
		}
	}
	if !foundVersion {
		t.Errorf("Apache versions = %+v", c.ApacheVersions)
	}
}

func TestVersionBelow(t *testing.T) {
	cases := []struct {
		v    string
		want bool
	}{
		{"3.5.1", true}, {"3.5", true}, {"2.9", true},
		{"3.6", false}, {"3.7.1", false}, {"4.0", false},
	}
	for _, c := range cases {
		if got := versionBelow(c.v, 3, 6); got != c.want {
			t.Errorf("versionBelow(%q) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestTrackersTable20(t *testing.T) {
	web := uint8(store.PortHTTP)
	mk := func(ip string, cluster int64, gaID string, trackers ...string) *store.Record {
		return rec(ip, web, 200, func(r *store.Record) {
			r.Cluster = cluster
			r.AnalyticsID = gaID
			r.Trackers = trackers
		})
	}
	st := mkStore(t, 10, []int{0}, [][]*store.Record{{
		mk("1.0.0.1", 1, "UA-100-1", "google-analytics"),
		mk("1.0.0.2", 1, "UA-100-2", "google-analytics", "facebook"),
		mk("1.0.0.3", 2, "UA-200-1", "google-analytics", "facebook", "twitter"),
		mk("1.0.0.4", 3, "", "twitter"),
	}})
	tr := Trackers(st)
	if tr.Rows[0].Tracker != "google-analytics" || tr.Rows[0].IPs != 3 {
		t.Errorf("top tracker = %+v", tr.Rows[0])
	}
	if tr.Rows[0].Clusters != 2 {
		t.Errorf("GA clusters = %d, want 2", tr.Rows[0].Clusters)
	}
	if tr.OneTracker != 0.5 || tr.TwoTrackers != 0.25 || tr.ThreeTrackers != 0.25 {
		t.Errorf("mix = %+v", tr)
	}
	if tr.UniqueGAIDs != 3 || tr.GAAccounts != 2 {
		t.Errorf("GA: ids=%d accounts=%d", tr.UniqueGAIDs, tr.GAAccounts)
	}
	// Account 100 has 2 profiles, account 200 has 1.
	if tr.OneProfileFrac != 0.5 || tr.TwoProfileFrac != 0.5 {
		t.Errorf("profiles: one=%v two=%v", tr.OneProfileFrac, tr.TwoProfileFrac)
	}
}

func TestFormatSmoke(t *testing.T) {
	st, res := clusterFixture(t)
	for _, s := range []string{
		Usage(st).Format("x"),
		Ports(st).Format("x"),
		Statuses(st).Format("x"),
		FormatContentTypes("x", ContentTypes(st, 5)),
		Churn(st).Format("x"),
		Clustering(st, res).Format("x"),
		Sizes(res).Format("x"),
		ClusterAvailability(st, res).Format("x"),
		SizePatterns(st, res, 10).Format("x", 5),
		IPUptimes(res).Format("x"),
		FormatTopClusters("x", TopClusters(res, 3, nil)),
		VPCUsage(st).Format("x"),
		VPCClusters(st, res).Format("x"),
		Census(st).Format("x"),
		Trackers(st).Format("x"),
	} {
		if s == "" {
			t.Error("empty Format output")
		}
		if strings.Contains(s, "%!") {
			t.Errorf("broken formatting: %s", s)
		}
	}
}

func BenchmarkChurn(b *testing.B) {
	web := uint8(store.PortHTTP)
	var rounds [][]*store.Record
	days := make([]int, 10)
	for r := 0; r < 10; r++ {
		days[r] = r * 3
		var recs []*store.Record
		for i := 0; i < 500; i++ {
			recs = append(recs, rec(fmt.Sprintf("1.0.%d.%d", (i+r)%200, i%250), web, 200))
		}
		rounds = append(rounds, recs)
	}
	s := store.New("bench")
	for i, recs := range rounds {
		_, _ = s.BeginRound(days[i])
		for _, r := range recs {
			cp := *r
			_ = s.Put(&cp)
		}
		s.AddProbed(10000)
		_ = s.EndRound()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Churn(s)
	}
}
