package analysis

import (
	"fmt"
	"sort"
	"strings"

	"whowas/internal/features"
	"whowas/internal/htmlparse"
	"whowas/internal/store"
)

// Share is a generic (name, fraction) row, averaged across rounds.
type Share struct {
	Name  string
	Share float64
	Count float64 // average count per round
}

// CensusResult is the §8.3 software census: servers, backends, and
// templates identified on available IPs, with version breakdowns for
// the headline products.
type CensusResult struct {
	// IdentifiedServerFrac is the share of available IPs revealing a
	// Server header (89.9% on EC2).
	IdentifiedServerFrac  float64
	ServerFamilies        []Share // of identified servers
	IdentifiedBackendFrac float64 // share of available IPs with x-powered-by
	BackendFamilies       []Share // of identified backends
	TemplateFrac          float64 // share of available IPs with a template
	TemplateFamilies      []Share // of identified templates
	ApacheVersions        []Share // of Apache servers
	PHPVersions           []Share // of PHP backends
	IISVersions           []Share // of IIS servers
	WordPressVersions     []Share // of WordPress templates
	// VulnerableWordPress is the share of WordPress sites below 3.6
	// (the XSS-vulnerable versions the paper flags; >68% on EC2).
	VulnerableWordPress float64
}

// shareCounter accumulates per-round fractions.
type shareCounter struct {
	rounds int
	counts map[string]float64 // summed per-round counts
	total  float64            // summed per-round denominators
}

func newShareCounter() *shareCounter {
	return &shareCounter{counts: map[string]float64{}}
}

func (s *shareCounter) addRound(counts map[string]int) {
	s.rounds++
	var tot int
	for _, n := range counts {
		tot += n
	}
	s.total += float64(tot)
	for k, n := range counts {
		s.counts[k] += float64(n)
	}
}

func (s *shareCounter) shares() []Share {
	out := make([]Share, 0, len(s.counts))
	for k, n := range s.counts {
		sh := Share{Name: k, Count: n / float64(maxInt(s.rounds, 1))}
		if s.total > 0 {
			sh.Share = n / s.total
		}
		out = append(out, sh)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Census computes the §8.3 software ecosystem census over all rounds.
func Census(st *store.Store) CensusResult {
	servers := newShareCounter()
	backends := newShareCounter()
	templates := newShareCounter()
	apacheV := newShareCounter()
	phpV := newShareCounter()
	iisV := newShareCounter()
	wpV := newShareCounter()
	var availSum, serverSum, backendSum, templateSum float64
	var wpTotal, wpVulnerable float64

	st.EachRound(func(r *store.Round) bool {
		sc := map[string]int{}
		bc := map[string]int{}
		tc := map[string]int{}
		av := map[string]int{}
		pv := map[string]int{}
		iv := map[string]int{}
		wv := map[string]int{}
		var avail, withServer, withBackend, withTemplate float64
		r.Each(func(rec *store.Record) bool {
			if !rec.Available() {
				return true
			}
			avail++
			if rec.Server != "" {
				withServer++
				fam := features.ServerFamily(rec.Server)
				sc[fam]++
				switch fam {
				case "Apache":
					if v := features.VersionOf(rec.Server, "Apache"); v != "" {
						av["Apache/"+v]++
					}
				case "Microsoft-IIS":
					if v := features.VersionOf(rec.Server, "Microsoft-IIS"); v != "" {
						iv["IIS/"+v]++
					}
				}
			}
			if rec.PoweredBy != "" {
				withBackend++
				fam := features.BackendFamily(rec.PoweredBy)
				bc[fam]++
				if fam == "PHP" {
					if v := features.VersionOf(rec.PoweredBy, "PHP"); v != "" {
						pv["PHP/"+v]++
					}
				}
			}
			if rec.Template != "" {
				withTemplate++
				fam := features.TemplateFamily(rec.Template)
				tc[fam]++
				if fam == "WordPress" {
					wpTotal++
					if v := features.VersionOf(rec.Template, "WordPress"); v != "" {
						wv["WordPress/"+v]++
						if versionBelow(v, 3, 6) {
							wpVulnerable++
						}
					}
				}
			}
			return true
		})
		availSum += avail
		serverSum += withServer
		backendSum += withBackend
		templateSum += withTemplate
		servers.addRound(sc)
		backends.addRound(bc)
		templates.addRound(tc)
		apacheV.addRound(av)
		phpV.addRound(pv)
		iisV.addRound(iv)
		wpV.addRound(wv)
		return true
	})

	out := CensusResult{
		ServerFamilies:    servers.shares(),
		BackendFamilies:   backends.shares(),
		TemplateFamilies:  templates.shares(),
		ApacheVersions:    apacheV.shares(),
		PHPVersions:       phpV.shares(),
		IISVersions:       iisV.shares(),
		WordPressVersions: wpV.shares(),
	}
	if availSum > 0 {
		out.IdentifiedServerFrac = serverSum / availSum
		out.IdentifiedBackendFrac = backendSum / availSum
		out.TemplateFrac = templateSum / availSum
	}
	if wpTotal > 0 {
		out.VulnerableWordPress = wpVulnerable / wpTotal
	}
	return out
}

// versionBelow reports whether "a.b.c" sorts below major.minor.
func versionBelow(v string, major, minor int) bool {
	var a, b int
	fmt.Sscanf(v, "%d.%d", &a, &b)
	if a != major {
		return a < major
	}
	return b < minor
}

// Format renders the census.
func (c CensusResult) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "§8.3 census (%s): server identified on %.1f%% of available IPs, backend on %.1f%%, template on %.1f%%\n",
		cloud, 100*c.IdentifiedServerFrac, 100*c.IdentifiedBackendFrac, 100*c.TemplateFrac)
	printShares := func(title string, shares []Share, topN int) {
		fmt.Fprintf(&sb, "  %s:\n", title)
		if len(shares) > topN {
			shares = shares[:topN]
		}
		for _, s := range shares {
			fmt.Fprintf(&sb, "    %-36s %5.1f%% (avg %.0f/round)\n", s.Name, 100*s.Share, s.Count)
		}
	}
	printShares("servers", c.ServerFamilies, 8)
	printShares("backends", c.BackendFamilies, 6)
	printShares("templates", c.TemplateFamilies, 5)
	printShares("Apache versions", c.ApacheVersions, 6)
	printShares("PHP versions", c.PHPVersions, 6)
	printShares("IIS versions", c.IISVersions, 5)
	printShares("WordPress versions", c.WordPressVersions, 6)
	fmt.Fprintf(&sb, "  WordPress below 3.6 (vulnerable): %.1f%%\n", 100*c.VulnerableWordPress)
	return sb.String()
}

// TrackerRow is one row of Table 20.
type TrackerRow struct {
	Tracker  string
	IPs      int
	Clusters int
}

// TrackerStudy is Table 20 plus the §8.3 tracker-count and Google
// Analytics account statistics.
type TrackerStudy struct {
	Rows  []TrackerRow // final-round tracker usage, descending by IPs
	Round int          // the round measured (the paper uses the last)
	// Multi-tracker mix among tracker-using pages.
	OneTracker, TwoTrackers, ThreeTrackers float64
	// Google Analytics accounting (§8.3).
	UniqueGAIDs    int
	GAAccounts     int
	OneProfileFrac float64 // accounts with a single profile
	TwoProfileFrac float64
}

// Trackers computes Table 20 on the last round, and GA statistics over
// the whole campaign.
func Trackers(st *store.Store) TrackerStudy {
	out := TrackerStudy{}
	n := st.NumRounds()
	if n == 0 {
		return out
	}
	last := st.Round(n - 1)
	out.Round = last.Index

	ipCounts := map[string]int{}
	clusterSets := map[string]map[int64]bool{}
	var one, two, three, users float64
	last.Each(func(rec *store.Record) bool {
		if len(rec.Trackers) == 0 {
			return true
		}
		users++
		switch len(rec.Trackers) {
		case 1:
			one++
		case 2:
			two++
		default:
			three++
		}
		for _, tr := range rec.Trackers {
			ipCounts[tr]++
			if rec.Cluster != 0 {
				if clusterSets[tr] == nil {
					clusterSets[tr] = map[int64]bool{}
				}
				clusterSets[tr][rec.Cluster] = true
			}
		}
		return true
	})
	for tr, n := range ipCounts {
		out.Rows = append(out.Rows, TrackerRow{Tracker: tr, IPs: n, Clusters: len(clusterSets[tr])})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].IPs != out.Rows[j].IPs {
			return out.Rows[i].IPs > out.Rows[j].IPs
		}
		return out.Rows[i].Tracker < out.Rows[j].Tracker
	})
	if users > 0 {
		out.OneTracker = one / users
		out.TwoTrackers = two / users
		out.ThreeTrackers = three / users
	}

	// GA accounts across the whole campaign.
	ids := map[string]bool{}
	accounts := map[string]map[string]bool{} // account -> profiles
	st.EachRound(func(r *store.Round) bool {
		r.Each(func(rec *store.Record) bool {
			if rec.AnalyticsID == "" {
				return true
			}
			ids[rec.AnalyticsID] = true
			if acct, prof, ok := htmlparse.SplitAnalyticsID(rec.AnalyticsID); ok {
				if accounts[acct] == nil {
					accounts[acct] = map[string]bool{}
				}
				accounts[acct][prof] = true
			}
			return true
		})
		return true
	})
	out.UniqueGAIDs = len(ids)
	out.GAAccounts = len(accounts)
	var oneProf, twoProf float64
	for _, profs := range accounts {
		switch len(profs) {
		case 1:
			oneProf++
		case 2:
			twoProf++
		}
	}
	if len(accounts) > 0 {
		out.OneProfileFrac = oneProf / float64(len(accounts))
		out.TwoProfileFrac = twoProf / float64(len(accounts))
	}
	return out
}

// Format renders Table 20.
func (t TrackerStudy) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 20 (%s): top third-party trackers (round %d)\n", cloud, t.Round)
	fmt.Fprintf(&sb, "  %-20s %8s %8s\n", "Tracker", "#IP", "#Clust.")
	rows := t.Rows
	if len(rows) > 10 {
		rows = rows[:10]
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-20s %8d %8d\n", r.Tracker, r.IPs, r.Clusters)
	}
	fmt.Fprintf(&sb, "  tracker mix: one %.0f%%  two %.0f%%  three+ %.0f%%\n",
		100*t.OneTracker, 100*t.TwoTrackers, 100*t.ThreeTrackers)
	fmt.Fprintf(&sb, "  GA: %d unique IDs, %d accounts (%.1f%% one profile, %.1f%% two)\n",
		t.UniqueGAIDs, t.GAAccounts, 100*t.OneProfileFrac, 100*t.TwoProfileFrac)
	return sb.String()
}
