package analysis

import (
	"fmt"
	"sort"
	"strings"

	"whowas/internal/cluster"
	"whowas/internal/ipaddr"
	"whowas/internal/store"
	"whowas/internal/timeseries"
)

// ClusteringSummary is Table 6.
type ClusteringSummary struct {
	ResponsiveIPs   int // distinct responsive IPs across the campaign
	UniqueSimhashes int
	TopLevel        int
	SecondLevel     int
	Final           int
}

// Clustering computes Table 6 from the store and clustering result.
func Clustering(st *store.Store, res *cluster.Result) ClusteringSummary {
	ips := map[ipaddr.Addr]bool{}
	st.EachRound(func(r *store.Round) bool {
		r.Each(func(rec *store.Record) bool {
			if rec.Responsive() {
				ips[rec.IP] = true
			}
			return true
		})
		return true
	})
	return ClusteringSummary{
		ResponsiveIPs:   len(ips),
		UniqueSimhashes: res.UniqueHashes,
		TopLevel:        res.TopLevel,
		SecondLevel:     res.SecondLevel,
		Final:           res.Final,
	}
}

// Format renders Table 6.
func (c ClusteringSummary) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 6 (%s): clustering summary\n", cloud)
	fmt.Fprintf(&sb, "  Responsive IPs     %8d\n", c.ResponsiveIPs)
	fmt.Fprintf(&sb, "  Unique simhashes   %8d\n", c.UniqueSimhashes)
	fmt.Fprintf(&sb, "  Top-level clusters %8d\n", c.TopLevel)
	fmt.Fprintf(&sb, "  2nd-level clusters %8d\n", c.SecondLevel)
	fmt.Fprintf(&sb, "  Final clusters     %8d\n", c.Final)
	return sb.String()
}

// clusterSeries precomputes, per final cluster, its per-round IP count
// and day offsets, shared by several analyses.
type clusterSeries struct {
	c       *cluster.Cluster
	byRound map[int]map[ipaddr.Addr]bool // round -> member IPs
	rounds  []int                        // rounds where available, ascending
	uniqIPs map[ipaddr.Addr]bool
}

func seriesOf(c *cluster.Cluster) *clusterSeries {
	s := &clusterSeries{
		c:       c,
		byRound: map[int]map[ipaddr.Addr]bool{},
		uniqIPs: map[ipaddr.Addr]bool{},
	}
	for _, rec := range c.Records {
		m := s.byRound[rec.Round]
		if m == nil {
			m = map[ipaddr.Addr]bool{}
			s.byRound[rec.Round] = m
		}
		m[rec.IP] = true
		s.uniqIPs[rec.IP] = true
	}
	for r := range s.byRound {
		s.rounds = append(s.rounds, r)
	}
	sort.Ints(s.rounds)
	return s
}

// avgSize is the mean member count over rounds where available.
func (s *clusterSeries) avgSize() float64 {
	if len(s.rounds) == 0 {
		return 0
	}
	sum := 0
	for _, r := range s.rounds {
		sum += len(s.byRound[r])
	}
	return float64(sum) / float64(len(s.rounds))
}

// SizeMix reports §8.1's cluster-size distribution by average size.
type SizeMix struct {
	Singleton, Small, Medium, Large float64 // 1 / 2-20 / 21-50 / >50
	Total                           int
}

// Sizes computes the average-cluster-size mix.
func Sizes(res *cluster.Result) SizeMix {
	var mix SizeMix
	for _, c := range res.Clusters {
		avg := seriesOf(c).avgSize()
		mix.Total++
		switch {
		case avg <= 1.5:
			mix.Singleton++
		case avg <= 20:
			mix.Small++
		case avg <= 50:
			mix.Medium++
		default:
			mix.Large++
		}
	}
	if mix.Total > 0 {
		n := float64(mix.Total)
		mix.Singleton /= n
		mix.Small /= n
		mix.Medium /= n
		mix.Large /= n
	}
	return mix
}

// Format renders the size mix.
func (m SizeMix) Format(cloud string) string {
	return fmt.Sprintf("Cluster sizes (%s): avg 1 IP %.1f%%  2-20 %.1f%%  21-50 %.2f%%  >50 %.2f%%  (of %d clusters)",
		cloud, 100*m.Singleton, 100*m.Small, 100*m.Medium, 100*m.Large, m.Total)
}

// AvailabilityChange is Figure 10: per round, the fraction of all
// observed clusters whose availability flipped vs the previous round.
type AvailabilityChange struct {
	Points []timeseries.Point // X = round index, Y = fraction
	Avg    float64
}

// ClusterAvailability computes Figure 10.
func ClusterAvailability(st *store.Store, res *cluster.Result) AvailabilityChange {
	nRounds := st.NumRounds()
	total := len(res.Clusters)
	out := AvailabilityChange{}
	if total == 0 || nRounds < 2 {
		return out
	}
	// availability[cluster][round]
	avail := make([]map[int]bool, len(res.Clusters))
	for i, c := range res.Clusters {
		avail[i] = map[int]bool{}
		for _, rec := range c.Records {
			avail[i][rec.Round] = true
		}
	}
	for r := 1; r < nRounds; r++ {
		flips := 0
		for i := range avail {
			if avail[i][r] != avail[i][r-1] {
				flips++
			}
		}
		frac := float64(flips) / float64(total)
		out.Points = append(out.Points, timeseries.Point{X: float64(r), Y: frac})
		out.Avg += frac
	}
	out.Avg /= float64(len(out.Points))
	return out
}

// Format renders the Figure 10 series.
func (a AvailabilityChange) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 10 (%s): cluster availability change per round (avg %.1f%% of all clusters)\n", cloud, 100*a.Avg)
	for _, p := range a.Points {
		fmt.Fprintf(&sb, "  round %2.0f: %5.2f%%\n", p.X, 100*p.Y)
	}
	return sb.String()
}

// PatternRow is one row of Table 11.
type PatternRow struct {
	Pattern string
	Count   int
	Frac    float64
}

// PatternTable is Table 11 plus the §8.1 pattern-0 subgroups.
type PatternTable struct {
	Rows      []PatternRow // all patterns, descending by count
	Total     int
	Ephemeral int // pattern-0 clusters whose PAA median is all zero
}

// SizePatterns computes Table 11: each final cluster's size series is
// reduced with 7-day-median PAA and Algorithm 1's tendency vector.
func SizePatterns(st *store.Store, res *cluster.Result, campaignDays int) PatternTable {
	rounds := st.Rounds()
	dayOf := make([]int, len(rounds))
	for i, r := range rounds {
		dayOf[i] = r.Day
	}
	counts := map[string]int{}
	out := PatternTable{}
	for _, c := range res.Clusters {
		s := seriesOf(c)
		samples := make([]timeseries.Sample, len(rounds))
		allZeroMedian := true
		for i := range rounds {
			v := float64(len(s.byRound[i]))
			samples[i] = timeseries.Sample{Day: dayOf[i], Value: v}
		}
		paa := timeseries.PAA(samples, campaignDays, 7)
		for _, v := range paa {
			if v != 0 {
				allZeroMedian = false
				break
			}
		}
		pattern := timeseries.PatternString(timeseries.MergeRuns(timeseries.Tendency(paa)))
		counts[pattern]++
		out.Total++
		if pattern == "0" && allZeroMedian {
			out.Ephemeral++
		}
	}
	for p, n := range counts {
		out.Rows = append(out.Rows, PatternRow{Pattern: p, Count: n, Frac: float64(n) / float64(out.Total)})
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		if out.Rows[i].Count != out.Rows[j].Count {
			return out.Rows[i].Count > out.Rows[j].Count
		}
		return out.Rows[i].Pattern < out.Rows[j].Pattern
	})
	return out
}

// Format renders Table 11's top rows.
func (p PatternTable) Format(cloud string, topN int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 11 (%s): top size-change patterns (%d clusters; %.1f%% ephemeral)\n",
		cloud, p.Total, 100*float64(p.Ephemeral)/float64(maxInt(p.Total, 1)))
	rows := p.Rows
	if topN > 0 && len(rows) > topN {
		rows = rows[:topN]
	}
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-14s %8d (%5.1f%%)\n", r.Pattern, r.Count, 100*r.Frac)
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// UptimeCDF is Figure 12: the distribution of average IP uptime across
// clusters of average size >= 2.
type UptimeCDF struct {
	CDF *timeseries.CDF
	// Share of ALL clusters with 100% average IP uptime (§8.1: 75.3%
	// EC2 / 78.9% Azure), and the singleton share.
	FullUptimeFrac float64
	SingletonFrac  float64
}

// IPUptimes computes Figure 12 and the §8.1 uptime headline numbers.
func IPUptimes(res *cluster.Result) UptimeCDF {
	var values []float64
	full, singletons := 0, 0
	for _, c := range res.Clusters {
		s := seriesOf(c)
		if len(s.rounds) == 0 {
			continue
		}
		// Average IP uptime: mean over member IPs of (rounds the IP is
		// in the cluster / rounds the cluster is available).
		lifetime := float64(len(s.rounds))
		var sum float64
		for ip := range s.uniqIPs {
			inRounds := 0
			for _, r := range s.rounds {
				if s.byRound[r][ip] {
					inRounds++
				}
			}
			sum += float64(inRounds) / lifetime
		}
		avgUptime := sum / float64(len(s.uniqIPs))
		if avgUptime >= 0.9999 {
			full++
		}
		if s.avgSize() <= 1.5 {
			singletons++
		} else {
			values = append(values, 100*avgUptime)
		}
	}
	total := len(res.Clusters)
	out := UptimeCDF{CDF: timeseries.NewCDF(values)}
	if total > 0 {
		out.FullUptimeFrac = float64(full) / float64(total)
		out.SingletonFrac = float64(singletons) / float64(total)
	}
	return out
}

// Format renders the Figure 12 CDF at decile resolution.
func (u UptimeCDF) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 12 (%s): CDF of avg IP uptime, clusters of size >= 2 (n=%d)\n", cloud, u.CDF.N())
	fmt.Fprintf(&sb, "  100%%-uptime clusters (all sizes): %.1f%%   singletons: %.1f%%\n",
		100*u.FullUptimeFrac, 100*u.SingletonFrac)
	for x := 0.0; x <= 100; x += 10 {
		fmt.Fprintf(&sb, "  P(uptime <= %3.0f%%) = %.2f\n", x, u.CDF.At(x))
	}
	return sb.String()
}

// TopClusterRow is one row of Table 15.
type TopClusterRow struct {
	ClusterID    int64
	Title        string
	TotalIPs     int     // unique IPs across the campaign
	MeanIPs      float64 // per available round
	MedianIPs    float64
	MinIPs       int
	MaxIPs       int
	AvgUptime    float64 // average IP uptime, percent
	MaxDeparture float64 // max fraction of IPs leaving between rounds, percent
	StableIPs    float64 // percent of unique IPs used in every round
	Regions      int
	MeanVPCIPs   float64
}

// TopClusters computes Table 15's top-N rows by mean size. regionOf
// maps an IP to its region name (from the provider's published
// ranges).
func TopClusters(res *cluster.Result, topN int, regionOf func(ipaddr.Addr) string) []TopClusterRow {
	type scored struct {
		s    *clusterSeries
		mean float64
	}
	var all []scored
	for _, c := range res.Clusters {
		s := seriesOf(c)
		all = append(all, scored{s, s.avgSize()})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].mean != all[j].mean {
			return all[i].mean > all[j].mean
		}
		return all[i].s.c.ID < all[j].s.c.ID
	})
	if topN > 0 && len(all) > topN {
		all = all[:topN]
	}
	var rows []TopClusterRow
	for _, sc := range all {
		s := sc.s
		row := TopClusterRow{ClusterID: s.c.ID, Title: s.c.Title, TotalIPs: len(s.uniqIPs), MeanIPs: sc.mean}
		var sizes []float64
		var vpcSum float64
		row.MinIPs = 1 << 30
		for _, r := range s.rounds {
			n := len(s.byRound[r])
			sizes = append(sizes, float64(n))
			if n < row.MinIPs {
				row.MinIPs = n
			}
			if n > row.MaxIPs {
				row.MaxIPs = n
			}
		}
		row.MedianIPs = timeseries.NewCDF(sizes).Quantile(0.5)
		// Avg IP uptime.
		lifetime := float64(len(s.rounds))
		var uptimeSum float64
		stable := 0
		for ip := range s.uniqIPs {
			inRounds := 0
			for _, r := range s.rounds {
				if s.byRound[r][ip] {
					inRounds++
				}
			}
			uptimeSum += float64(inRounds) / lifetime
			if inRounds == len(s.rounds) {
				stable++
			}
		}
		row.AvgUptime = 100 * uptimeSum / float64(len(s.uniqIPs))
		row.StableIPs = 100 * float64(stable) / float64(len(s.uniqIPs))
		// Max departure between consecutive available rounds.
		for i := 1; i < len(s.rounds); i++ {
			prev, cur := s.byRound[s.rounds[i-1]], s.byRound[s.rounds[i]]
			left := 0
			for ip := range prev {
				if !cur[ip] {
					left++
				}
			}
			if len(prev) > 0 {
				frac := 100 * float64(left) / float64(len(prev))
				if frac > row.MaxDeparture {
					row.MaxDeparture = frac
				}
			}
		}
		// Regions and VPC usage.
		regions := map[string]bool{}
		for ip := range s.uniqIPs {
			if regionOf != nil {
				regions[regionOf(ip)] = true
			}
		}
		row.Regions = len(regions)
		// Mean VPC IPs per round, from the cartography label on records.
		vpcByRound := map[int]int{}
		for _, rec := range s.c.Records {
			if rec.VPC {
				vpcByRound[rec.Round]++
			}
		}
		for _, r := range s.rounds {
			vpcSum += float64(vpcByRound[r])
		}
		if len(s.rounds) > 0 {
			row.MeanVPCIPs = vpcSum / float64(len(s.rounds))
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTopClusters renders Table 15.
func FormatTopClusters(cloud string, rows []TopClusterRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 15 (%s): top clusters by mean IPs per round\n", cloud)
	fmt.Fprintf(&sb, "  %3s %8s %8s %8s %6s %6s %9s %9s %8s %7s %8s\n",
		"#", "TotalIP", "MeanIP", "MedianIP", "MinIP", "MaxIP", "Uptime%", "MaxDep%", "Stable%", "Regions", "MeanVPC")
	for i, r := range rows {
		fmt.Fprintf(&sb, "  %3d %8d %8.0f %8.0f %6d %6d %9.1f %9.1f %8.1f %7d %8.0f\n",
			i+1, r.TotalIPs, r.MeanIPs, r.MedianIPs, r.MinIPs, r.MaxIPs,
			r.AvgUptime, r.MaxDeparture, r.StableIPs, r.Regions, r.MeanVPCIPs)
	}
	return sb.String()
}

// RegionUsage reports §8.1's region statistics: the share of clusters
// using a single region.
type RegionUsage struct {
	SingleRegion float64
	Total        int
}

// Regions computes region usage per cluster.
func Regions(res *cluster.Result, regionOf func(ipaddr.Addr) string) RegionUsage {
	out := RegionUsage{}
	if regionOf == nil {
		return out
	}
	single := 0
	for _, c := range res.Clusters {
		regions := map[string]bool{}
		for _, rec := range c.Records {
			regions[regionOf(rec.IP)] = true
		}
		out.Total++
		if len(regions) == 1 {
			single++
		}
	}
	if out.Total > 0 {
		out.SingleRegion = float64(single) / float64(out.Total)
	}
	return out
}

// CrossCloudOverlap estimates how many clusters appear in both clouds
// by matching level-1 identity features across two clustering results
// (the paper found 980 such clusters). Matching requires a
// non-generic key: a Google Analytics ID, or a non-empty title plus
// keywords.
func CrossCloudOverlap(a, b *cluster.Result) int {
	keyOf := func(c *cluster.Cluster) string {
		if c.AnalyticsID != "" {
			return "ga:" + c.AnalyticsID
		}
		if c.Title != "" && c.Keywords != "" {
			return "tk:" + c.Title + "|" + c.Keywords
		}
		return ""
	}
	seen := map[string]bool{}
	for _, c := range a.Clusters {
		if k := keyOf(c); k != "" {
			seen[k] = true
		}
	}
	overlap := 0
	matched := map[string]bool{}
	for _, c := range b.Clusters {
		if k := keyOf(c); k != "" && seen[k] && !matched[k] {
			matched[k] = true
			overlap++
		}
	}
	return overlap
}
