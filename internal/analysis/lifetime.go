package analysis

import (
	"fmt"
	"sort"
	"strings"

	"whowas/internal/cluster"
	"whowas/internal/ipaddr"
	"whowas/internal/store"
)

// ClusterUptimeStats reproduces the §8.1 lifetime/uptime text results:
// the lifetime of a cluster runs from its first to its last available
// round, uptime is the fraction of rounds in between where it was
// available, and larger clusters are more available.
type ClusterUptimeStats struct {
	// Singleton-cluster uptime shares (§8.1: 54.3% at 100%, 89.1%
	// >= 90%, 92.7% >= 80% on EC2).
	SingletonFull, Singleton90, Singleton80 float64
	// Size-2 clusters at 100% uptime (§8.1: 86.4%).
	Size2Full float64
	// AllLargeFull reports whether every cluster of size >= LargeSize
	// had 100% uptime (§8.1: true at size >= 18).
	LargeSize    int
	AllLargeFull bool
	// LowUptimeFrac is the share of clusters below 90% uptime (§8.1:
	// 9.4% EC2 / 10.6% Azure).
	LowUptimeFrac float64
}

// clusterUptime computes one cluster's lifetime uptime: available
// rounds over rounds spanned by [first, last].
func clusterUptime(s *clusterSeries) float64 {
	if len(s.rounds) == 0 {
		return 0
	}
	span := s.rounds[len(s.rounds)-1] - s.rounds[0] + 1
	return float64(len(s.rounds)) / float64(span)
}

// ClusterUptimes computes the §8.1 uptime breakdown.
func ClusterUptimes(res *cluster.Result) ClusterUptimeStats {
	out := ClusterUptimeStats{LargeSize: 18, AllLargeFull: true}
	var nSingle, single100, single90, single80 float64
	var nSize2, size2100 float64
	var low, total float64
	for _, c := range res.Clusters {
		s := seriesOf(c)
		if len(s.rounds) == 0 {
			continue
		}
		up := clusterUptime(s)
		avg := s.avgSize()
		total++
		if up < 0.9 {
			low++
		}
		switch {
		case avg <= 1.5:
			nSingle++
			if up >= 0.9999 {
				single100++
			}
			if up >= 0.9 {
				single90++
			}
			if up >= 0.8 {
				single80++
			}
		case avg < 2.5:
			nSize2++
			if up >= 0.9999 {
				size2100++
			}
		}
		if int(avg+0.5) >= out.LargeSize && up < 0.9999 {
			out.AllLargeFull = false
		}
	}
	if nSingle > 0 {
		out.SingletonFull = single100 / nSingle
		out.Singleton90 = single90 / nSingle
		out.Singleton80 = single80 / nSingle
	}
	if nSize2 > 0 {
		out.Size2Full = size2100 / nSize2
	}
	if total > 0 {
		out.LowUptimeFrac = low / total
	}
	return out
}

// Format renders the uptime breakdown.
func (c ClusterUptimeStats) Format(cloud string) string {
	return fmt.Sprintf(
		"Cluster uptime (%s): singletons 100%%: %.1f%%  >=90%%: %.1f%%  >=80%%: %.1f%% | size-2 100%%: %.1f%% | all >=%d-IP clusters fully up: %v | <90%% uptime: %.1f%%",
		cloud, 100*c.SingletonFull, 100*c.Singleton90, 100*c.Singleton80,
		100*c.Size2Full, c.LargeSize, c.AllLargeFull, 100*c.LowUptimeFrac)
}

// RegionChangeStats reproduces §8.1's region-usage dynamics: most
// clusters keep the same region set over their lifetime; a few add or
// drop one or two regions.
type RegionChangeStats struct {
	Same, PlusOne, PlusTwo, MinusOne, MinusTwo float64
	Total                                      int
}

// RegionChanges compares each cluster's region set in the first and
// second halves of its life.
func RegionChanges(res *cluster.Result, regionOf func(ipaddr.Addr) string) RegionChangeStats {
	out := RegionChangeStats{}
	if regionOf == nil {
		return out
	}
	var same, p1, p2, m1, m2 float64
	for _, c := range res.Clusters {
		s := seriesOf(c)
		if len(s.rounds) < 2 {
			out.Total++
			same++
			continue
		}
		mid := s.rounds[len(s.rounds)/2]
		early := map[string]bool{}
		late := map[string]bool{}
		for _, rec := range c.Records {
			r := regionOf(rec.IP)
			if rec.Round <= mid {
				early[r] = true
			} else {
				late[r] = true
			}
		}
		if len(late) == 0 { // everything before mid
			out.Total++
			same++
			continue
		}
		delta := len(late) - len(early)
		out.Total++
		switch {
		case delta == 0:
			same++
		case delta == 1:
			p1++
		case delta >= 2:
			p2++
		case delta == -1:
			m1++
		default:
			m2++
		}
	}
	if out.Total > 0 {
		n := float64(out.Total)
		out.Same = same / n
		out.PlusOne = p1 / n
		out.PlusTwo = p2 / n
		out.MinusOne = m1 / n
		out.MinusTwo = m2 / n
	}
	return out
}

// Format renders the region-change shares.
func (r RegionChangeStats) Format(cloud string) string {
	return fmt.Sprintf("Region changes (%s): same %.2f%%  +1 %.2f%%  +2 %.2f%%  -1 %.2f%%  -2 %.2f%% (of %d clusters)",
		cloud, 100*r.Same, 100*r.PlusOne, 100*r.PlusTwo, 100*r.MinusOne, 100*r.MinusTwo, r.Total)
}

// VPCTransitionStats counts mixed clusters that shifted networking
// type over the campaign (§8.1: 1,024 classic->VPC, 483 VPC->classic).
type VPCTransitionStats struct {
	ClassicToVPC, VPCToClassic int
}

// VPCTransitions compares each cluster's dominant networking type in
// its first and last thirds.
func VPCTransitions(res *cluster.Result) VPCTransitionStats {
	out := VPCTransitionStats{}
	for _, c := range res.Clusters {
		s := seriesOf(c)
		if len(s.rounds) < 3 {
			continue
		}
		firstCut := s.rounds[len(s.rounds)/3]
		lastCut := s.rounds[2*len(s.rounds)/3]
		var earlyVPC, earlyClassic, lateVPC, lateClassic int
		for _, rec := range c.Records {
			switch {
			case rec.Round <= firstCut:
				if rec.VPC {
					earlyVPC++
				} else {
					earlyClassic++
				}
			case rec.Round >= lastCut:
				if rec.VPC {
					lateVPC++
				} else {
					lateClassic++
				}
			}
		}
		earlyIsVPC := earlyVPC > earlyClassic
		lateIsVPC := lateVPC > lateClassic
		if !earlyIsVPC && lateIsVPC {
			out.ClassicToVPC++
		}
		if earlyIsVPC && !lateIsVPC {
			out.VPCToClassic++
		}
	}
	return out
}

// Format renders the transition counts.
func (v VPCTransitionStats) Format(cloud string) string {
	return fmt.Sprintf("VPC transitions (%s): classic->VPC %d  VPC->classic %d",
		cloud, v.ClassicToVPC, v.VPCToClassic)
}

// Linchpin is an IP aggregating many malicious URLs (§8.2: one EC2 IP
// carried 128 malware URLs pointing at Blackhole exploit pages).
type Linchpin struct {
	IP         ipaddr.Addr
	MaxURLs    int // most flagged URLs seen on the IP in one round
	Domains    int // distinct domains across those URLs
	FirstRound int
	LastRound  int
}

// Linchpins finds IPs whose pages carry at least minURLs flagged URLs
// in a single round. flagged reports whether a URL is malicious (e.g.
// a Safe-Browsing lookup bound to the round's day).
func Linchpins(st *store.Store, minURLs int, flagged func(url string, day int) bool) []Linchpin {
	if minURLs <= 0 {
		minURLs = 20
	}
	byIP := map[ipaddr.Addr]*Linchpin{}
	st.EachRound(func(round *store.Round) bool {
		round.Each(func(rec *store.Record) bool {
			n := 0
			domains := map[string]bool{}
			for _, u := range rec.Links {
				if flagged(u, round.Day) {
					n++
					domains[domainOf(u)] = true
				}
			}
			if n < minURLs {
				return true
			}
			lp := byIP[rec.IP]
			if lp == nil {
				lp = &Linchpin{IP: rec.IP, FirstRound: rec.Round}
				byIP[rec.IP] = lp
			}
			if n > lp.MaxURLs {
				lp.MaxURLs = n
			}
			if len(domains) > lp.Domains {
				lp.Domains = len(domains)
			}
			lp.LastRound = rec.Round
			return true
		})
		return true
	})
	out := make([]Linchpin, 0, len(byIP))
	for _, lp := range byIP {
		out = append(out, *lp)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxURLs != out[j].MaxURLs {
			return out[i].MaxURLs > out[j].MaxURLs
		}
		return out[i].IP < out[j].IP
	})
	return out
}

func domainOf(rawURL string) string {
	s := rawURL
	if i := strings.Index(s, "://"); i >= 0 {
		s = s[i+3:]
	}
	if i := strings.IndexAny(s, "/:"); i >= 0 {
		s = s[:i]
	}
	return s
}

// FormatLinchpins renders the linchpin list.
func FormatLinchpins(cloud string, lps []Linchpin) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Linchpin IPs (%s): %d IPs carrying many malicious URLs\n", cloud, len(lps))
	for i, lp := range lps {
		if i >= 10 {
			break
		}
		fmt.Fprintf(&sb, "  %-15s max %3d URLs across %2d domains (rounds %d..%d)\n",
			lp.IP, lp.MaxURLs, lp.Domains, lp.FirstRound, lp.LastRound)
	}
	return sb.String()
}
