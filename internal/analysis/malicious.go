package analysis

import (
	"fmt"
	"sort"
	"strings"

	"whowas/internal/blacklist"
	"whowas/internal/cluster"
	"whowas/internal/ipaddr"
	"whowas/internal/simhash"
	"whowas/internal/store"
	"whowas/internal/timeseries"
)

// SBStudy summarizes the Google-Safe-Browsing-based analysis of §8.2:
// IPs whose fetched pages contain URLs the feed labels phishing or
// malware, and how long such IPs stay malicious (Figure 16).
type SBStudy struct {
	MaliciousIPs  int
	MaliciousURLs int
	Clusters      int // distinct final clusters the malicious IPs belong to
	PhishingIPs   int
	MalwareIPs    int
	// Lifetime CDFs in days (Figure 16): all IPs, and split by
	// networking type for EC2.
	LifetimeAll, LifetimeClassic, LifetimeVPC *timeseries.CDF
}

// SafeBrowsing runs the §8.2 Safe-Browsing join: every link on every
// fetched page is checked against the feed as of the round's day.
func SafeBrowsing(st *store.Store, feed *blacklist.SafeBrowsing) SBStudy {
	type ipInfo struct {
		firstDay, lastDay int
		phishing, malware bool
		vpc               bool
		clusters          map[int64]bool
	}
	infos := map[ipaddr.Addr]*ipInfo{}
	urls := map[string]bool{}
	st.EachRound(func(round *store.Round) bool {
		day := round.Day
		round.Each(func(rec *store.Record) bool {
			var hit bool
			var phishing, malware bool
			for _, link := range rec.Links {
				switch feed.Lookup(link, day) {
				case blacklist.PhishingVerdict:
					hit, phishing = true, true
					urls[link] = true
				case blacklist.MalwareVerdict:
					hit, malware = true, true
					urls[link] = true
				}
			}
			if !hit {
				return true
			}
			info := infos[rec.IP]
			if info == nil {
				info = &ipInfo{firstDay: day, clusters: map[int64]bool{}}
				infos[rec.IP] = info
			}
			info.lastDay = day
			info.phishing = info.phishing || phishing
			info.malware = info.malware || malware
			info.vpc = info.vpc || rec.VPC
			if rec.Cluster != 0 {
				info.clusters[rec.Cluster] = true
			}
			return true
		})
		return true
	})
	out := SBStudy{MaliciousIPs: len(infos), MaliciousURLs: len(urls)}
	clusters := map[int64]bool{}
	var all, classic, vpc []float64
	for _, info := range infos {
		if info.phishing {
			out.PhishingIPs++
		}
		if info.malware {
			out.MalwareIPs++
		}
		for c := range info.clusters {
			clusters[c] = true
		}
		lifetime := float64(info.lastDay-info.firstDay) + 1
		all = append(all, lifetime)
		if info.vpc {
			vpc = append(vpc, lifetime)
		} else {
			classic = append(classic, lifetime)
		}
	}
	out.Clusters = len(clusters)
	out.LifetimeAll = timeseries.NewCDF(all)
	out.LifetimeClassic = timeseries.NewCDF(classic)
	out.LifetimeVPC = timeseries.NewCDF(vpc)
	return out
}

// Format renders the Safe-Browsing study with the Figure 16 CDF.
func (s SBStudy) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Safe Browsing (%s): %d malicious IPs (%d phishing, %d malware), %d URLs, %d clusters\n",
		cloud, s.MaliciousIPs, s.PhishingIPs, s.MalwareIPs, s.MaliciousURLs, s.Clusters)
	fmt.Fprintf(&sb, "Figure 16 (%s): malicious-IP lifetime CDF (days)\n", cloud)
	for _, d := range []float64{1, 3, 7, 14, 21, 30, 45, 60, 90} {
		fmt.Fprintf(&sb, "  P(lifetime <= %3.0f) = all %.2f  classic %.2f  vpc %.2f\n",
			d, s.LifetimeAll.At(d), s.LifetimeClassic.At(d), s.LifetimeVPC.At(d))
	}
	fmt.Fprintf(&sb, "  share > 7 days: %.0f%%   share > 14 days: %.0f%%\n",
		100*(1-s.LifetimeAll.At(7)), 100*(1-s.LifetimeAll.At(14)))
	return sb.String()
}

// MonthWindow names a day range of the campaign (Table 17's columns).
type MonthWindow struct {
	Name     string
	From, To int // half-open day interval
}

// DefaultMonths reproduces the paper's Oct/Nov/Dec columns for a
// campaign starting Sep 30, 2013.
func DefaultMonths(days int) []MonthWindow {
	out := []MonthWindow{{"Oct", 1, 32}, {"Nov", 32, 62}, {"Dec", 62, 93}}
	var valid []MonthWindow
	for _, m := range out {
		if m.From < days {
			if m.To > days {
				m.To = days
			}
			valid = append(valid, m)
		}
	}
	return valid
}

// DomainCount is one row of Table 18.
type DomainCount struct {
	Domain string
	URLs   int
}

// VTBehavior classifies a malicious IP's content dynamics (§8.2).
type VTBehavior int

// Behaviour types per §8.2.
const (
	TypeUnknown VTBehavior = iota
	Type1                  // same malicious page the whole time
	Type2                  // malicious page appears and disappears
	Type3                  // multiple different malicious pages
)

// VTStudy summarizes the VirusTotal-based analysis: Table 17 (regions
// by month), Table 18 (domains), the behaviour-type split, Figure 19
// (detection lag CDFs) and the cluster-expansion count.
type VTStudy struct {
	MaliciousIPs int
	RegionMonth  map[string]map[string]int // region -> month -> count
	Months       []MonthWindow
	TopDomains   []DomainCount
	TypeCounts   map[VTBehavior]int
	// Figure 19: days from page-up to first detection (Lag) and days
	// the page stays up after the last detection (Tail), per type.
	LagCDF, TailCDF map[VTBehavior]*timeseries.CDF
	// ExpandedIPs counts additional IPs implicated via co-clustering
	// with a VT-flagged IP (the paper found 191).
	ExpandedIPs  int
	ClusteredIPs int // VT IPs that appear in a final cluster
}

// VirusTotal runs the §8.2 VirusTotal join over the store.
func VirusTotal(st *store.Store, vt *blacklist.VirusTotal, res *cluster.Result, regionOf func(ipaddr.Addr) string, months []MonthWindow, minEngines int) VTStudy {
	if minEngines <= 0 {
		minEngines = 2
	}
	ips := vt.MaliciousIPs(minEngines)
	out := VTStudy{
		MaliciousIPs: len(ips),
		RegionMonth:  map[string]map[string]int{},
		Months:       months,
		TypeCounts:   map[VTBehavior]int{},
		LagCDF:       map[VTBehavior]*timeseries.CDF{},
		TailCDF:      map[VTBehavior]*timeseries.CDF{},
	}
	domainURLs := map[string]map[string]bool{}
	lag := map[VTBehavior][]float64{}
	tail := map[VTBehavior][]float64{}
	flagged := map[ipaddr.Addr]bool{}
	clustersWithVT := map[int64]bool{}

	for _, ip := range ips {
		flagged[ip] = true
		rep := vt.Report(ip)
		// Table 17: region by month of detection activity.
		region := "unknown"
		if regionOf != nil {
			region = regionOf(ip)
		}
		if out.RegionMonth[region] == nil {
			out.RegionMonth[region] = map[string]int{}
		}
		for _, m := range months {
			if rep.FirstDetection() < m.To && rep.LastDetection() >= m.From {
				out.RegionMonth[region][m.Name]++
			}
		}
		// Table 18: URLs by domain.
		for _, u := range rep.URLs() {
			d := blacklist.DomainOf(u)
			if d == "" {
				continue
			}
			if domainURLs[d] == nil {
				domainURLs[d] = map[string]bool{}
			}
			domainURLs[d][u] = true
		}
		// Behaviour type and Figure 19, from the WhoWas history.
		hist := st.History(ip)
		vtURLs := map[string]bool{}
		for _, u := range rep.URLs() {
			vtURLs[u] = true
		}
		behavior, firstUp, lastUp := classifyBehavior(hist, vtURLs)
		if behavior == TypeUnknown {
			continue
		}
		out.TypeCounts[behavior]++
		first, last := rep.FirstDetection(), rep.LastDetection()
		if first >= 0 && firstUp >= 0 {
			l := float64(first - firstUp)
			if l < 0 {
				l = 0
			}
			lag[behavior] = append(lag[behavior], l)
		}
		if last >= 0 && lastUp >= last {
			tail[behavior] = append(tail[behavior], float64(lastUp-last))
		} else if last >= 0 && lastUp >= 0 {
			tail[behavior] = append(tail[behavior], 0)
		}
		// Which final clusters carried this IP *while it hosted the
		// malicious content*? Restricting to malicious rounds keeps a
		// later, unrelated tenant of the same address (IP churn!) from
		// implicating its whole cluster.
		counted := false
		for _, rec := range hist {
			if rec.Cluster == 0 {
				continue
			}
			hasMal := false
			for _, link := range rec.Links {
				if vtURLs[link] {
					hasMal = true
					break
				}
			}
			if hasMal {
				clustersWithVT[rec.Cluster] = true
				if !counted {
					out.ClusteredIPs++
					counted = true
				}
			}
		}
	}

	// Table 18 rows.
	for d, urls := range domainURLs {
		out.TopDomains = append(out.TopDomains, DomainCount{Domain: d, URLs: len(urls)})
	}
	sort.Slice(out.TopDomains, func(i, j int) bool {
		if out.TopDomains[i].URLs != out.TopDomains[j].URLs {
			return out.TopDomains[i].URLs > out.TopDomains[j].URLs
		}
		return out.TopDomains[i].Domain < out.TopDomains[j].Domain
	})

	for b, vs := range lag {
		out.LagCDF[b] = timeseries.NewCDF(vs)
	}
	for b, vs := range tail {
		out.TailCDF[b] = timeseries.NewCDF(vs)
	}

	// Cluster expansion: co-clustered IPs not themselves flagged.
	if res != nil {
		expanded := map[ipaddr.Addr]bool{}
		for _, c := range res.Clusters {
			if !clustersWithVT[c.ID] {
				continue
			}
			for _, rec := range c.Records {
				if !flagged[rec.IP] {
					expanded[rec.IP] = true
				}
			}
		}
		out.ExpandedIPs = len(expanded)
	}
	return out
}

// classifyBehavior inspects an IP's record history: rounds where the
// page carries VT-known malicious URLs define the malicious window;
// gaps inside it indicate type 2, multiple distinct malicious pages
// type 3, otherwise type 1. Returns the first and last campaign days
// the page was up with malicious content (-1 when never observed).
func classifyBehavior(hist []*store.Record, vtURLs map[string]bool) (VTBehavior, int, int) {
	var malRounds []int
	var availRounds []int
	var pages []simhash.Fingerprint
	dayOfRound := map[int]int{}
	for _, rec := range hist {
		dayOfRound[rec.Round] = rec.Day
		if rec.Available() {
			availRounds = append(availRounds, rec.Round)
		}
		hasMal := false
		for _, link := range rec.Links {
			if vtURLs[link] {
				hasMal = true
				break
			}
		}
		if hasMal {
			malRounds = append(malRounds, rec.Round)
			novel := true
			for _, p := range pages {
				if simhash.Distance(p, rec.Simhash) <= 12 {
					novel = false
					break
				}
			}
			if novel {
				pages = append(pages, rec.Simhash)
			}
		}
	}
	if len(malRounds) == 0 {
		return TypeUnknown, -1, -1
	}
	firstUp := dayOfRound[malRounds[0]]
	lastUp := dayOfRound[malRounds[len(malRounds)-1]]
	if len(pages) >= 2 {
		return Type3, firstUp, lastUp
	}
	// Type 2: the page was available but non-malicious between two
	// malicious observations.
	malSet := map[int]bool{}
	for _, r := range malRounds {
		malSet[r] = true
	}
	for _, r := range availRounds {
		if r > malRounds[0] && r < malRounds[len(malRounds)-1] && !malSet[r] {
			return Type2, firstUp, lastUp
		}
	}
	return Type1, firstUp, lastUp
}

// Format renders Tables 17/18 and the Figure 19 CDFs.
func (v VTStudy) Format(cloud string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "VirusTotal (%s): %d malicious IPs (>=2 engines), %d in clusters, +%d via co-clustering\n",
		cloud, v.MaliciousIPs, v.ClusteredIPs, v.ExpandedIPs)

	fmt.Fprintf(&sb, "Table 17 (%s): malicious IPs by region and month\n", cloud)
	var regions []string
	for r := range v.RegionMonth {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool {
		return regionTotal(v.RegionMonth[regions[i]]) > regionTotal(v.RegionMonth[regions[j]])
	})
	fmt.Fprintf(&sb, "  %-16s", "Region")
	for _, m := range v.Months {
		fmt.Fprintf(&sb, " %6s", m.Name)
	}
	fmt.Fprintf(&sb, " %6s\n", "Total")
	for _, r := range regions {
		fmt.Fprintf(&sb, "  %-16s", r)
		for _, m := range v.Months {
			fmt.Fprintf(&sb, " %6d", v.RegionMonth[r][m.Name])
		}
		fmt.Fprintf(&sb, " %6d\n", regionTotal(v.RegionMonth[r]))
	}

	fmt.Fprintf(&sb, "Table 18 (%s): top domains in malicious URLs\n", cloud)
	top := v.TopDomains
	if len(top) > 10 {
		top = top[:10]
	}
	for _, d := range top {
		fmt.Fprintf(&sb, "  %-36s %5d\n", d.Domain, d.URLs)
	}

	fmt.Fprintf(&sb, "Behaviour types (§8.2): type1 %d  type2 %d  type3 %d\n",
		v.TypeCounts[Type1], v.TypeCounts[Type2], v.TypeCounts[Type3])

	fmt.Fprintf(&sb, "Figure 19 (%s): detection lag CDFs (days)\n", cloud)
	for _, b := range []VTBehavior{Type1, Type2, Type3} {
		if cdf := v.LagCDF[b]; cdf != nil && cdf.N() > 0 {
			fmt.Fprintf(&sb, "  type%d first-detection lag:  P(<=3d)=%.2f  P(<=7d)=%.2f  P(<=14d)=%.2f  (n=%d)\n",
				b, cdf.At(3), cdf.At(7), cdf.At(14), cdf.N())
		}
	}
	for _, b := range []VTBehavior{Type1, Type2, Type3} {
		if cdf := v.TailCDF[b]; cdf != nil && cdf.N() > 0 {
			fmt.Fprintf(&sb, "  type%d active-after-last-det: P(0d)=%.2f  P(<=3d)=%.2f  P(<=7d)=%.2f  (n=%d)\n",
				b, cdf.At(0), cdf.At(3), cdf.At(7), cdf.N())
		}
	}
	return sb.String()
}

func regionTotal(m map[string]int) int {
	t := 0
	for _, n := range m {
		t += n
	}
	return t
}
