package analysis

import (
	"fmt"
	"sort"
	"strings"

	"whowas/internal/cluster"
	"whowas/internal/ipaddr"
	"whowas/internal/store"
)

// DepartureEvent describes one round's permanent departures: clusters
// that were available in the previous round, become unavailable at
// this round, and never return (§8.1's Friday/Saturday dips — the
// paper found 3,198 / 2,767 / 1,449 / 983 / 1,327 such clusters on the
// EC2 dip dates, with 15,295 IPs involved).
type DepartureEvent struct {
	Round    int
	Day      int
	Clusters int
	IPs      int
}

// Departures finds, for every round, the clusters that permanently
// leave at that round, and returns the rounds with the largest
// departure batches (all rounds when topN <= 0).
func Departures(st *store.Store, res *cluster.Result, topN int) []DepartureEvent {
	nRounds := st.NumRounds()
	if nRounds < 2 {
		return nil
	}
	dayOf := make([]int, 0, nRounds)
	st.EachRound(func(r *store.Round) bool {
		dayOf = append(dayOf, r.Day)
		return true
	})
	events := make([]DepartureEvent, nRounds)
	for i := range events {
		events[i] = DepartureEvent{Round: i, Day: dayOf[i]}
	}
	for _, c := range res.Clusters {
		rounds := c.Rounds()
		if len(rounds) == 0 {
			continue
		}
		last := rounds[len(rounds)-1]
		if last >= nRounds-1 {
			continue // still alive at the end: not a departure
		}
		departAt := last + 1
		events[departAt].Clusters++
		ips := map[ipaddr.Addr]bool{}
		for _, rec := range c.Records {
			ips[rec.IP] = true
		}
		events[departAt].IPs += len(ips)
	}
	out := events[1:]
	sort.Slice(out, func(i, j int) bool {
		if out[i].Clusters != out[j].Clusters {
			return out[i].Clusters > out[j].Clusters
		}
		if out[i].IPs != out[j].IPs {
			return out[i].IPs > out[j].IPs
		}
		return out[i].Round < out[j].Round
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// FormatDepartures renders the departure table.
func FormatDepartures(cloud string, events []DepartureEvent) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Permanent departures (%s): largest never-return batches by round\n", cloud)
	fmt.Fprintf(&sb, "  %-6s %-5s %9s %7s\n", "round", "day", "clusters", "IPs")
	for _, e := range events {
		fmt.Fprintf(&sb, "  %-6d %-5d %9d %7d\n", e.Round, e.Day, e.Clusters, e.IPs)
	}
	return sb.String()
}
