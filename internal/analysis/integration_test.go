package analysis

import (
	"context"
	"strings"
	"sync"
	"testing"

	"whowas/internal/cloudsim"
	"whowas/internal/cluster"
	"whowas/internal/core"
)

// campaignFixture runs one reduced EC2 campaign shared by the
// integration tests: small cloud, 18 rounds across the full 93 days.
var (
	campaignOnce sync.Once
	campaignP    *core.Platform
	campaignErr  error
)

func campaign(t *testing.T) *core.Platform {
	t.Helper()
	if testing.Short() {
		t.Skip("campaign integration test skipped in -short mode")
	}
	campaignOnce.Do(func() {
		p, err := core.NewPlatform(cloudsim.DefaultEC2Config(1024, 91))
		if err != nil {
			campaignErr = err
			return
		}
		cfg := core.FastCampaign()
		// Reduced schedule: every 5 days, then daily over the last
		// three weeks (dense enough to observe type-2 flicker and
		// type-3 page rotation).
		var days []int
		for d := 0; d < 72; d += 5 {
			days = append(days, d)
		}
		for d := 72; d < 93; d++ {
			days = append(days, d)
		}
		cfg.RoundDays = days
		if err := p.RunCampaign(context.Background(), cfg); err != nil {
			campaignErr = err
			return
		}
		if err := p.RunClustering(cluster.Config{Threshold: 3}); err != nil {
			campaignErr = err
			return
		}
		campaignP = p
	})
	if campaignErr != nil {
		t.Fatal(campaignErr)
	}
	return campaignP
}

func TestSafeBrowsingStudyIntegration(t *testing.T) {
	p := campaign(t)
	study := SafeBrowsing(p.Store, p.Feeds.SafeBrowsing)
	if study.MaliciousIPs == 0 {
		t.Fatal("no malicious IPs found via Safe Browsing")
	}
	if study.MaliciousURLs == 0 {
		t.Error("no malicious URLs")
	}
	if study.MalwareIPs == 0 {
		t.Error("no malware IPs")
	}
	if study.MalwareIPs+study.PhishingIPs < study.MaliciousIPs {
		t.Errorf("kind counts %d+%d below total %d",
			study.MalwareIPs, study.PhishingIPs, study.MaliciousIPs)
	}
	// Figure 16 shape: malicious IPs are long-lived (paper: 62% > 7
	// days). With detection lag, demand a substantial long-lived share.
	if longLived := 1 - study.LifetimeAll.At(7); longLived < 0.3 {
		t.Errorf("share of malicious IPs living > 7 days = %.2f, want >= 0.3", longLived)
	}
	if out := study.Format("ec2"); !strings.Contains(out, "Figure 16") {
		t.Error("Format missing Figure 16")
	}
}

func TestVirusTotalStudyIntegration(t *testing.T) {
	p := campaign(t)
	months := DefaultMonths(p.Cloud.Days())
	study := VirusTotal(p.Store, p.Feeds.VirusTotal, p.Clusters, p.Cloud.RegionOf, months, 2)
	if study.MaliciousIPs == 0 {
		t.Fatal("no VT malicious IPs")
	}
	// Region shape: us-east-1 dominates (Table 17).
	usEast := regionTotal(study.RegionMonth["us-east-1"])
	for r, m := range study.RegionMonth {
		if r != "us-east-1" && regionTotal(m) > usEast {
			t.Errorf("region %s (%d) outranks us-east-1 (%d)", r, regionTotal(m), usEast)
		}
	}
	// Table 18: file-hosting domains dominate.
	if len(study.TopDomains) == 0 {
		t.Fatal("no malicious domains")
	}
	foundDropbox := false
	for _, d := range study.TopDomains[:minInt(5, len(study.TopDomains))] {
		if strings.Contains(d.Domain, "dropbox") {
			foundDropbox = true
		}
	}
	if !foundDropbox {
		t.Errorf("dropbox not in top-5 domains: %+v", study.TopDomains[:minInt(5, len(study.TopDomains))])
	}
	// Behaviour types: steady type-1 pages always dominate; at the
	// reduced fixture scale, the flickering (2) and rotating (3)
	// behaviours require catching off-rounds, so demand at least one
	// of them combined (the full-scale bench observes all three).
	if study.TypeCounts[Type1] == 0 {
		t.Error("no type-1 IPs")
	}
	if study.TypeCounts[Type2]+study.TypeCounts[Type3] == 0 {
		t.Errorf("no type-2 or type-3 IPs: %+v", study.TypeCounts)
	}
	// Figure 19: type-1/3 detected faster than type 2 at the 3-day mark.
	if l1, l2 := study.LagCDF[Type1], study.LagCDF[Type2]; l1 != nil && l2 != nil && l1.N() > 3 && l2.N() > 3 {
		if l1.At(3) < l2.At(3) {
			t.Errorf("type-1 3-day detection %.2f below type-2 %.2f", l1.At(3), l2.At(3))
		}
	}
	if out := study.Format("ec2"); !strings.Contains(out, "Table 17") || !strings.Contains(out, "Table 18") {
		t.Error("Format missing tables")
	}
}

func TestClusterExpansionIntegration(t *testing.T) {
	p := campaign(t)
	months := DefaultMonths(p.Cloud.Days())
	study := VirusTotal(p.Store, p.Feeds.VirusTotal, p.Clusters, p.Cloud.RegionOf, months, 2)
	if study.ClusteredIPs == 0 {
		t.Skip("no VT IPs landed in clusters")
	}
	// Expansion can be zero if all malicious clusters are singletons,
	// but across ~100 malicious services some have multiple IPs.
	if study.ExpandedIPs == 0 {
		t.Log("warning: no expanded IPs; malicious clusters all singleton in this sample")
	}
}

func TestUsageIntegrationShape(t *testing.T) {
	p := campaign(t)
	u := Usage(p.Store)
	frac := u.Responsive.Mean / float64(u.Probed)
	if frac < 0.19 || frac > 0.29 {
		t.Errorf("mean responsive fraction = %.3f, want ~0.237", frac)
	}
	availRatio := u.Available.Mean / u.Responsive.Mean
	if availRatio < 0.55 || availRatio > 0.82 {
		t.Errorf("available/responsive = %.3f, want ~0.68", availRatio)
	}
	if u.GrowthResp < 0 || u.GrowthResp > 0.10 {
		t.Errorf("responsive growth = %.3f, want ~0.033", u.GrowthResp)
	}
	mix := Ports(p.Store)
	if mix.SSHOnly < 0.15 || mix.SSHOnly > 0.36 {
		t.Errorf("SSH-only share = %.3f, want ~0.259", mix.SSHOnly)
	}
	stat := Statuses(p.Store)
	if stat.OK200 < 0.55 || stat.OK200 > 0.75 {
		t.Errorf("200 share = %.3f, want ~0.647", stat.OK200)
	}
	ct := ContentTypes(p.Store, 5)
	if ct[0].Type != "text/html" || ct[0].Share < 0.9 {
		t.Errorf("top content type = %+v", ct[0])
	}
}

func TestClusterStatsIntegrationShape(t *testing.T) {
	p := campaign(t)
	mix := Sizes(p.Clusters)
	if mix.Singleton < 0.6 || mix.Singleton > 0.9 {
		t.Errorf("singleton share = %.3f, want ~0.79", mix.Singleton)
	}
	up := IPUptimes(p.Clusters)
	if up.FullUptimeFrac < 0.5 {
		t.Errorf("full-uptime cluster share = %.3f, want ~0.75", up.FullUptimeFrac)
	}
	rows := TopClusters(p.Clusters, 10, p.Cloud.RegionOf)
	if len(rows) == 0 || rows[0].MeanIPs < 10 {
		t.Errorf("top cluster too small: %+v", rows)
	}
	// Census shape.
	c := Census(p.Store)
	if len(c.ServerFamilies) == 0 || c.ServerFamilies[0].Name != "Apache" {
		t.Errorf("top server family = %+v", c.ServerFamilies)
	}
	tr := Trackers(p.Store)
	if len(tr.Rows) == 0 || tr.Rows[0].Tracker != "google-analytics" {
		t.Errorf("top tracker = %+v", tr.Rows)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
