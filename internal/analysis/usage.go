// Package analysis implements the measurement studies of §8 over a
// collected WhoWas store: cloud usage dynamics (Tables 3-7, Figures
// 8-14), malicious-activity analysis against blacklist feeds (Figures
// 16/19, Tables 17/18), and the web software ecosystem census
// (§8.3, Table 20). Each function returns a typed result whose Rows or
// Points mirror the corresponding table or figure in the paper, so the
// benchmark harness can print like-for-like output.
package analysis

import (
	"fmt"
	"sort"
	"strings"

	"whowas/internal/store"
	"whowas/internal/timeseries"
)

// UsageSummary is Table 7: per-round statistics of responsive IPs,
// available IPs and clusters, with overall growth.
type UsageSummary struct {
	Probed      int64 // IPs probed per round (denominator for percentages)
	Responsive  timeseries.Stats
	Available   timeseries.Stats
	Clusters    timeseries.Stats
	GrowthResp  float64 // relative growth of responsive IPs first->last round
	GrowthAvail float64
	GrowthClust float64
	// Raw per-round series (Figure 8's three panels).
	RespSeries, AvailSeries, ClusterSeries []float64
	Days                                   []int // campaign day per round
}

// roundCounts tallies one round.
func roundCounts(r *store.Round) (responsive, available int) {
	r.Each(func(rec *store.Record) bool {
		if rec.Responsive() {
			responsive++
		}
		if rec.Available() {
			available++
		}
		return true
	})
	return
}

// clusterCountInRound counts distinct final clusters observed in a
// round.
func clusterCountInRound(r *store.Round) int {
	seen := map[int64]bool{}
	r.Each(func(rec *store.Record) bool {
		if rec.Cluster != 0 {
			seen[rec.Cluster] = true
		}
		return true
	})
	return len(seen)
}

// Usage computes Table 7 and the Figure 8 series. Clustering must have
// run for the cluster columns to be populated.
func Usage(st *store.Store) *UsageSummary {
	out := &UsageSummary{}
	st.EachRound(func(r *store.Round) bool {
		resp, avail := roundCounts(r)
		out.RespSeries = append(out.RespSeries, float64(resp))
		out.AvailSeries = append(out.AvailSeries, float64(avail))
		out.ClusterSeries = append(out.ClusterSeries, float64(clusterCountInRound(r)))
		out.Days = append(out.Days, r.Day)
		if r.Probed > out.Probed {
			out.Probed = r.Probed
		}
		return true
	})
	out.Responsive = timeseries.Summarize(out.RespSeries)
	out.Available = timeseries.Summarize(out.AvailSeries)
	out.Clusters = timeseries.Summarize(out.ClusterSeries)
	_, out.GrowthResp = timeseries.Growth(out.RespSeries)
	_, out.GrowthAvail = timeseries.Growth(out.AvailSeries)
	_, out.GrowthClust = timeseries.Growth(out.ClusterSeries)
	return out
}

// Format renders the Table 7 block.
func (u *UsageSummary) Format(cloud string) string {
	var sb strings.Builder
	pct := func(v float64) string {
		if u.Probed == 0 {
			return "-"
		}
		return fmt.Sprintf("%5.1f%%", 100*v/float64(u.Probed))
	}
	fmt.Fprintf(&sb, "Table 7 (%s): usage of the address space (probed IPs per round: %d)\n", cloud, u.Probed)
	fmt.Fprintf(&sb, "%-16s %12s %9s %12s %9s %10s\n", "", "#Responsive", "(%)", "#Available", "(%)", "#Clusters")
	row := func(name string, r, a, c float64) {
		fmt.Fprintf(&sb, "%-16s %12.0f %9s %12.0f %9s %10.0f\n", name, r, pct(r), a, pct(a), c)
	}
	row("Minimum", u.Responsive.Min, u.Available.Min, u.Clusters.Min)
	row("Maximum", u.Responsive.Max, u.Available.Max, u.Clusters.Max)
	row("Average", u.Responsive.Mean, u.Available.Mean, u.Clusters.Mean)
	row("Std. dev.", u.Responsive.Std, u.Available.Std, u.Clusters.Std)
	fmt.Fprintf(&sb, "%-16s %11.1f%% %9s %11.1f%% %9s %9.1f%%\n", "Overall growth",
		100*u.GrowthResp, "", 100*u.GrowthAvail, "", 100*u.GrowthClust)
	return sb.String()
}

// PortMix is Table 3: the open-port combinations of responsive IPs,
// averaged across rounds, as percentages of responsive IPs.
type PortMix struct {
	SSHOnly, HTTPOnly, HTTPSOnly, Both float64
}

// Ports computes Table 3.
func Ports(st *store.Store) PortMix {
	var mix PortMix
	rounds := 0
	st.EachRound(func(r *store.Round) bool {
		rounds++
		var ssh, h, hs, both, total float64
		r.Each(func(rec *store.Record) bool {
			if !rec.Responsive() {
				return true
			}
			total++
			hasH := rec.OpenPorts&store.PortHTTP != 0
			hasS := rec.OpenPorts&store.PortHTTPS != 0
			switch {
			case hasH && hasS:
				both++
			case hasH:
				h++
			case hasS:
				hs++
			default:
				ssh++
			}
			return true
		})
		if total == 0 {
			return true
		}
		mix.SSHOnly += ssh / total
		mix.HTTPOnly += h / total
		mix.HTTPSOnly += hs / total
		mix.Both += both / total
		return true
	})
	if rounds == 0 {
		return mix
	}
	n := float64(rounds)
	mix.SSHOnly /= n
	mix.HTTPOnly /= n
	mix.HTTPSOnly /= n
	mix.Both /= n
	return mix
}

// Format renders the Table 3 row.
func (p PortMix) Format(cloud string) string {
	return fmt.Sprintf("Table 3 (%s): %% responsive IPs by open ports: 22-only %.1f  80-only %.1f  443-only %.1f  80&443 %.1f",
		cloud, 100*p.SSHOnly, 100*p.HTTPOnly, 100*p.HTTPSOnly, 100*p.Both)
}

// StatusMix is Table 4: HTTP status classes among IPs with an HTTP
// response, averaged across rounds.
type StatusMix struct {
	OK200, C4xx, C5xx, Other float64
}

// Statuses computes Table 4.
func Statuses(st *store.Store) StatusMix {
	var mix StatusMix
	rounds := 0
	st.EachRound(func(r *store.Round) bool {
		rounds++
		var ok, c4, c5, other, total float64
		r.Each(func(rec *store.Record) bool {
			if rec.HTTPStatus == 0 {
				return true
			}
			total++
			switch {
			case rec.HTTPStatus == 200:
				ok++
			case rec.HTTPStatus >= 400 && rec.HTTPStatus < 500:
				c4++
			case rec.HTTPStatus >= 500:
				c5++
			default:
				other++
			}
			return true
		})
		if total == 0 {
			return true
		}
		mix.OK200 += ok / total
		mix.C4xx += c4 / total
		mix.C5xx += c5 / total
		mix.Other += other / total
		return true
	})
	if rounds == 0 {
		return mix
	}
	n := float64(rounds)
	mix.OK200 /= n
	mix.C4xx /= n
	mix.C5xx /= n
	mix.Other /= n
	return mix
}

// Format renders the Table 4 row.
func (s StatusMix) Format(cloud string) string {
	return fmt.Sprintf("Table 4 (%s): %% responding IPs by status: 200 %.1f  4xx %.1f  5xx %.1f  other %.2f",
		cloud, 100*s.OK200, 100*s.C4xx, 100*s.C5xx, 100*s.Other)
}

// ContentTypeShare is one row of Table 5.
type ContentTypeShare struct {
	Type  string
	Share float64 // fraction of fetched pages
}

// ContentTypes computes Table 5's top-N content types over all
// collected pages.
func ContentTypes(st *store.Store, topN int) []ContentTypeShare {
	counts := map[string]int{}
	total := 0
	st.EachRound(func(r *store.Round) bool {
		r.Each(func(rec *store.Record) bool {
			if rec.HTTPStatus != 0 && rec.ContentType != "" {
				counts[rec.ContentType]++
				total++
			}
			return true
		})
		return true
	})
	out := make([]ContentTypeShare, 0, len(counts))
	for t, n := range counts {
		out = append(out, ContentTypeShare{Type: t, Share: float64(n) / float64(total)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Share != out[j].Share {
			return out[i].Share > out[j].Share
		}
		return out[i].Type < out[j].Type
	})
	if topN > 0 && len(out) > topN {
		rest := 0.0
		for _, c := range out[topN:] {
			rest += c.Share
		}
		out = append(out[:topN], ContentTypeShare{Type: "other", Share: rest})
	}
	return out
}

// FormatContentTypes renders Table 5.
func FormatContentTypes(cloud string, shares []ContentTypeShare) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 5 (%s): top content types\n", cloud)
	for _, c := range shares {
		fmt.Fprintf(&sb, "  %-28s %5.1f%%\n", c.Type, 100*c.Share)
	}
	return sb.String()
}
