package analysis

import (
	"strings"
	"testing"

	"whowas/internal/cluster"
	"whowas/internal/store"
)

func TestDepartures(t *testing.T) {
	res := &cluster.Result{Clusters: []*cluster.Cluster{
		// Departs after round 1 (never returns from round 2 on).
		mkCluster(1, map[int][]string{0: {"1.0.0.1", "1.0.0.2"}, 1: {"1.0.0.1", "1.0.0.2"}}),
		// Alive through the final round: not a departure.
		mkCluster(2, map[int][]string{0: {"2.0.0.1"}, 1: {"2.0.0.1"}, 2: {"2.0.0.1"}, 3: {"2.0.0.1"}}),
		// Departs after round 0.
		mkCluster(3, map[int][]string{0: {"3.0.0.1"}}),
	}}
	st := mkStore(t, 100, []int{0, 3, 6, 9}, [][]*store.Record{nil, nil, nil, nil})
	events := Departures(st, res, 0)
	byRound := map[int]DepartureEvent{}
	for _, e := range events {
		byRound[e.Round] = e
	}
	if e := byRound[2]; e.Clusters != 1 || e.IPs != 2 {
		t.Errorf("round-2 departures = %+v", e)
	}
	if e := byRound[1]; e.Clusters != 1 || e.IPs != 1 {
		t.Errorf("round-1 departures = %+v", e)
	}
	if e := byRound[3]; e.Clusters != 0 {
		t.Errorf("round-3 departures = %+v", e)
	}
	// topN caps and sorts by batch size.
	top := Departures(st, res, 1)
	if len(top) != 1 || top[0].IPs != 2 {
		t.Errorf("top departure = %+v", top)
	}
	if out := FormatDepartures("x", top); !strings.Contains(out, "never-return") {
		t.Error("format broken")
	}
}
