// Package atomicfile writes files crash-safely: content goes to a
// temporary sibling (<path>.tmp) and is renamed over the destination
// only after a successful sync. A campaign killed mid-write therefore
// never leaves a truncated report at the destination path — either the
// old content survives intact or the new content is complete. The
// metrics reports, saved stores and the trace journal all write
// through this package.
package atomicfile

import (
	"fmt"
	"os"
	"path/filepath"
)

// tmpPath is the deliberately predictable temp sibling: post-mortem
// tooling (and the trace journal reader) can inspect <path>.tmp after
// a crash that preceded the rename.
func tmpPath(path string) string { return path + ".tmp" }

// File is an open temp file that becomes path on Commit. Abort (or a
// Commit failure) removes the temp file; the destination is never
// touched until the rename.
type File struct {
	f    *os.File
	path string
	done bool
}

// Create opens <path>.tmp for writing. The parent directory must
// exist.
func Create(path string) (*File, error) {
	if path == "" {
		return nil, fmt.Errorf("atomicfile: empty path")
	}
	f, err := os.OpenFile(tmpPath(path), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("atomicfile: %w", err)
	}
	return &File{f: f, path: path}, nil
}

// Write appends to the temp file.
func (a *File) Write(p []byte) (int, error) { return a.f.Write(p) }

// Name returns the destination path the file will commit to.
func (a *File) Name() string { return a.path }

// Commit syncs the temp file and renames it over the destination.
// After Commit the File is closed; further writes fail.
func (a *File) Commit() error {
	if a.done {
		return fmt.Errorf("atomicfile: already committed or aborted")
	}
	a.done = true
	if err := a.f.Sync(); err != nil {
		// The sync failure is the error being reported; the close and
		// removal below are best-effort cleanup of a temp file whose
		// content is already known bad.
		_ = a.f.Close()
		_ = os.Remove(tmpPath(a.path))
		return fmt.Errorf("atomicfile: sync: %w", err)
	}
	if err := a.f.Close(); err != nil {
		_ = os.Remove(tmpPath(a.path))
		return fmt.Errorf("atomicfile: close: %w", err)
	}
	if err := os.Rename(tmpPath(a.path), a.path); err != nil {
		_ = os.Remove(tmpPath(a.path))
		return fmt.Errorf("atomicfile: rename: %w", err)
	}
	return nil
}

// Abort closes and removes the temp file, leaving the destination
// untouched. Safe to call after Commit (it then does nothing), which
// makes `defer f.Abort()` the standard cleanup.
func (a *File) Abort() {
	if a.done {
		return
	}
	a.done = true
	// Abort is the deliberately errorless cleanup path (callers defer
	// it); the destination was never touched, so nothing here can
	// corrupt it.
	_ = a.f.Close()
	_ = os.Remove(tmpPath(a.path))
}

// WriteFile writes data to path via the temp-and-rename protocol — the
// crash-safe os.WriteFile.
func WriteFile(path string, data []byte) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	defer f.Abort()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("atomicfile: write %s: %w", filepath.Base(path), err)
	}
	return f.Commit()
}
