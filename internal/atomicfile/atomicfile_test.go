package atomicfile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "report.json")

	if err := WriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "v1" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file left behind: %v", err)
	}

	// Overwrite is atomic too.
	if err := WriteFile(path, []byte("v2 longer content")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "v2 longer content" {
		t.Fatalf("overwrite read back %q", got)
	}
}

func TestAbortLeavesDestinationIntact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out")
	if err := WriteFile(path, []byte("original")); err != nil {
		t.Fatal(err)
	}

	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	f.Abort()

	got, err := os.ReadFile(path)
	if err != nil || string(got) != "original" {
		t.Fatalf("destination changed by abort: %q, %v", got, err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("abort left temp file: %v", err)
	}
}

func TestCrashLeavesTempNotDestination(t *testing.T) {
	// A "crash" is a File that is never committed or aborted: the temp
	// sibling holds the partial bytes, the destination does not exist.
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("{\"id\":1}\n")); err != nil {
		t.Fatal(err)
	}
	// No Commit, no Abort — process dies here.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("destination exists before commit: %v", err)
	}
	tmp, err := os.ReadFile(path + ".tmp")
	if err != nil {
		t.Fatalf("temp file missing after crash: %v", err)
	}
	if string(tmp) != "{\"id\":1}\n" {
		t.Errorf("temp content = %q", tmp)
	}
	f.Abort() // cleanup for the test process
}

func TestCommitTwiceFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err == nil {
		t.Error("second Commit succeeded")
	}
	f.Abort() // no-op after commit
	if _, err := os.Stat(path); err != nil {
		t.Errorf("destination missing after abort-after-commit: %v", err)
	}
}
