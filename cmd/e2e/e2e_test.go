// Package e2e is the exec-based CLI test harness: TestMain builds
// every binary under cmd/ once, and the tests run them as real
// processes — pipes, exit codes, SIGKILL — against temp dirs and
// ephemeral ports, asserting on the exact artifacts a user sees:
// store digests, exit codes, and JSON output.
//
// The suite skips under -short (it builds binaries and runs real
// campaigns); the full `go test ./...` tier runs it.
package e2e

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var binDir string

func TestMain(m *testing.M) {
	flag.Parse()
	if !testing.Short() {
		dir, err := os.MkdirTemp("", "whowas-e2e-bin")
		if err != nil {
			fmt.Fprintln(os.Stderr, "e2e:", err)
			os.Exit(1)
		}
		cmd := exec.Command("go", "build", "-o", dir, "./cmd/...")
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			fmt.Fprintf(os.Stderr, "e2e: building binaries: %v\n%s", err, out)
			os.Exit(1)
		}
		binDir = dir
	}
	code := m.Run()
	if binDir != "" {
		os.RemoveAll(binDir)
	}
	os.Exit(code)
}

func repoRoot() string {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		panic(err)
	}
	return root
}

func bin(name string) string { return filepath.Join(binDir, name) }

// runCLI executes one binary to completion and returns its combined
// output and exit code.
func runCLI(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin(name), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %s: %v", name, strings.Join(args, " "), err)
		}
		code = ee.ExitCode()
	}
	return string(out), code
}

// proc is a long-running CLI process whose stdout/stderr are streamed
// line by line, for daemons and workers the tests must observe and
// kill mid-flight.
type proc struct {
	t     *testing.T
	name  string
	cmd   *exec.Cmd
	lines chan string

	mu  sync.Mutex
	out bytes.Buffer

	waitOnce sync.Once
	waitErr  error
}

func startProc(t *testing.T, name string, args ...string) *proc {
	t.Helper()
	p := &proc{t: t, name: name, lines: make(chan string, 4096)}
	p.cmd = exec.Command(bin(name), args...)
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = &stderrWriter{p: p}
	if err := p.cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	go func() {
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.out.WriteString(line + "\n")
			p.mu.Unlock()
			select {
			case p.lines <- line:
			default:
			}
		}
		close(p.lines)
	}()
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			_ = p.cmd.Process.Kill()
			p.waitOnce.Do(func() { p.waitErr = p.cmd.Wait() })
		}
	})
	return p
}

type stderrWriter struct{ p *proc }

func (w *stderrWriter) Write(b []byte) (int, error) {
	w.p.mu.Lock()
	defer w.p.mu.Unlock()
	return w.p.out.Write(b)
}

func (p *proc) output() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.out.String()
}

// awaitLine blocks until a stdout line containing substr appears.
func (p *proc) awaitLine(substr string, timeout time.Duration) string {
	p.t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				p.t.Fatalf("%s exited before printing %q; output:\n%s", p.name, substr, p.output())
			}
			if strings.Contains(line, substr) {
				return line
			}
		case <-deadline:
			p.t.Fatalf("%s never printed %q; output so far:\n%s", p.name, substr, p.output())
		}
	}
}

// wait blocks until the process exits and returns its exit code.
func (p *proc) wait(timeout time.Duration) int {
	p.t.Helper()
	done := make(chan struct{})
	go func() {
		p.waitOnce.Do(func() { p.waitErr = p.cmd.Wait() })
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		_ = p.cmd.Process.Kill()
		p.t.Fatalf("%s did not exit in %s; output:\n%s", p.name, timeout, p.output())
	}
	if p.waitErr == nil {
		return 0
	}
	if ee, ok := p.waitErr.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	p.t.Fatalf("%s wait: %v", p.name, p.waitErr)
	return -1
}

// kill delivers SIGKILL — the chaos tests' worker death.
func (p *proc) kill() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatalf("killing %s: %v", p.name, err)
	}
	p.waitOnce.Do(func() { p.waitErr = p.cmd.Wait() })
}

// digestFrom extracts the "store digest: <hex>" line a campaign CLI
// prints — the identity every gate in this suite compares.
func digestFrom(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if d, ok := strings.CutPrefix(line, "store digest: "); ok {
			if len(d) != 64 {
				t.Fatalf("malformed digest %q", d)
			}
			return d
		}
	}
	t.Fatalf("no store digest in output:\n%s", out)
	return ""
}

// e2eScale keeps the simulated clouds small enough for a CLI
// round-trip in seconds; all processes in one test must agree on it.
const e2eScale = "8192"

// TestCampaignAndQuery runs the single-process flow a user starts
// with: whowas collects a store, whowas-query answers questions over
// it, bad invocations fail loudly.
func TestCampaignAndQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e suite skipped in -short mode")
	}
	tmp := t.TempDir()
	storePath := filepath.Join(tmp, "ec2.whowas")
	metricsPath := filepath.Join(tmp, "metrics.json")

	out, code := runCLI(t, "whowas",
		"-cloud", "ec2", "-scale", e2eScale, "-seed", "7", "-rounds", "2",
		"-cluster=false", "-carto=false", "-q",
		"-out", storePath, "-metrics", metricsPath)
	if code != 0 {
		t.Fatalf("whowas exit %d:\n%s", code, out)
	}
	digest := digestFrom(t, out)
	t.Logf("campaign digest: %s", digest)
	if !strings.Contains(out, "campaign complete: 2 rounds collected") {
		t.Errorf("missing round count in output:\n%s", out)
	}

	var metrics map[string]any
	raw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &metrics); err != nil {
		t.Fatalf("-metrics output is not JSON: %v", err)
	}

	out, code = runCLI(t, "whowas-query", "-store", storePath, "-summary", "-census")
	if code != 0 {
		t.Fatalf("whowas-query exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "rounds=2") {
		t.Errorf("query summary missing round count:\n%s", out)
	}

	// -json exports one round as a JSON array of records, after the
	// store header line.
	out, code = runCLI(t, "whowas-query", "-store", storePath, "-json", "0")
	if code != 0 {
		t.Fatalf("whowas-query -json exit %d:\n%s", code, out)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(out[strings.Index(out, "["):]), &records); err != nil {
		t.Fatalf("-json 0 output is not a JSON array: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("-json 0 exported no records")
	}
	if _, ok := records[0]["ip"]; !ok {
		t.Fatalf("-json 0 record 0 missing ip: %v", records[0])
	}

	// Misuse must exit non-zero: no store, missing store, no action.
	if out, code := runCLI(t, "whowas-query", "-summary"); code == 0 {
		t.Errorf("whowas-query without -store succeeded:\n%s", out)
	}
	if out, code := runCLI(t, "whowas-query", "-store", filepath.Join(tmp, "nope.whowas"), "-summary"); code == 0 {
		t.Errorf("whowas-query on a missing store succeeded:\n%s", out)
	}
	if out, code := runCLI(t, "whowas-query", "-store", storePath); code == 0 {
		t.Errorf("whowas-query with nothing to do succeeded:\n%s", out)
	}
	if out, code := runCLI(t, "whowas", "-cloud", "gcp"); code == 0 {
		t.Errorf("whowas with unknown cloud succeeded:\n%s", out)
	}
}

// TestColumnarStoreCLI is the CLI face of the storage-engine
// refactor: the same seeded campaign run on the in-memory backend and
// on the columnar backend (-store-dir) must print the same digest and
// write byte-identical -out gobs, whowas-query must answer from a
// segment directory directly, and -to-dir must convert gob to
// columnar with the digest intact.
func TestColumnarStoreCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e suite skipped in -short mode")
	}
	tmp := t.TempDir()
	memOut := filepath.Join(tmp, "mem.whowas")
	colOut := filepath.Join(tmp, "col.whowas")
	colDir := filepath.Join(tmp, "colstore")

	campaign := []string{
		"-cloud", "ec2", "-scale", e2eScale, "-seed", "7", "-rounds", "2",
		"-cluster=false", "-carto=false", "-q",
	}
	out, code := runCLI(t, "whowas", append(campaign, "-out", memOut)...)
	if code != 0 {
		t.Fatalf("in-memory whowas exit %d:\n%s", code, out)
	}
	want := digestFrom(t, out)

	out, code = runCLI(t, "whowas", append(campaign, "-out", colOut, "-store-dir", colDir)...)
	if code != 0 {
		t.Fatalf("columnar whowas exit %d:\n%s", code, out)
	}
	if got := digestFrom(t, out); got != want {
		t.Errorf("columnar campaign digest %s != in-memory %s", got, want)
	}
	memBytes, err := os.ReadFile(memOut)
	if err != nil {
		t.Fatal(err)
	}
	colBytes, err := os.ReadFile(colOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(memBytes, colBytes) {
		t.Error("-out gobs from the two backends are not byte-identical")
	}
	segs, err := filepath.Glob(filepath.Join(colDir, "*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Errorf("segment directory holds %d segments, want 2: %v", len(segs), segs)
	}

	// whowas-query opens the segment directory directly.
	out, code = runCLI(t, "whowas-query", "-store-dir", colDir, "-summary")
	if code != 0 {
		t.Fatalf("whowas-query -store-dir exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "cloud=ec2 rounds=2") {
		t.Errorf("columnar query missing store banner:\n%s", out)
	}
	out, code = runCLI(t, "whowas-query", "-store-dir", colDir, "-digest")
	if code != 0 {
		t.Fatalf("whowas-query -store-dir -digest exit %d:\n%s", code, out)
	}
	if got := digestFrom(t, out); got != want {
		t.Errorf("columnar directory digest %s != campaign digest %s", got, want)
	}

	// Gob -> columnar conversion preserves the digest.
	convDir := filepath.Join(tmp, "converted")
	if out, code := runCLI(t, "whowas-query", "-store", memOut, "-to-dir", convDir); code != 0 {
		t.Fatalf("whowas-query -to-dir exit %d:\n%s", code, out)
	}
	out, code = runCLI(t, "whowas-query", "-store-dir", convDir, "-digest")
	if code != 0 {
		t.Fatalf("whowas-query on converted dir exit %d:\n%s", code, out)
	}
	if got := digestFrom(t, out); got != want {
		t.Errorf("converted directory digest %s != campaign digest %s", got, want)
	}

	// Misuse fails loudly: both sources at once, a non-store directory,
	// converting onto a non-empty target.
	if out, code := runCLI(t, "whowas-query", "-store", memOut, "-store-dir", colDir, "-summary"); code == 0 {
		t.Errorf("whowas-query with both -store and -store-dir succeeded:\n%s", out)
	}
	if out, code := runCLI(t, "whowas-query", "-store-dir", tmp, "-summary"); code == 0 {
		t.Errorf("whowas-query on a non-store directory succeeded:\n%s", out)
	}
	if out, code := runCLI(t, "whowas-query", "-store", memOut, "-to-dir", colDir); code == 0 {
		t.Errorf("whowas-query -to-dir onto a non-empty store succeeded:\n%s", out)
	}
}

// startCloudd boots the cloud daemon on ephemeral ports and waits for
// health via whowas-query cloud.
func startCloudd(t *testing.T) (p *proc, addr string) {
	t.Helper()
	p = startProc(t, "whowas-cloudd",
		"-cloud", "ec2", "-scale", e2eScale, "-seed", "7",
		"-addr", "127.0.0.1:0", "-data-listeners", "2")
	line := p.awaitLine("control plane on http://", 30*time.Second)
	addr = line[strings.Index(line, "http://")+len("http://"):]
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, code := runCLI(t, "whowas-query", "cloud", "-addr", addr); code == 0 {
			return p, addr
		}
		if time.Now().After(deadline) {
			t.Fatalf("cloudd at %s never became healthy", addr)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// TestCoordinatorFleet is the CLI half of the tentpole gate: the same
// seeded cloud measured single-process, then by a 1-worker fleet,
// then by a 2-worker fleet with one worker SIGKILLed mid-round — all
// three digests must be byte-identical. Along the way it drives the
// fleet observability surface: `whowas-query fleet` must show worker
// rows and (after the kill) the lease_expired history event, and the
// coordinator's merged -trace-journal must attribute worker spans.
func TestCoordinatorFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e suite skipped in -short mode")
	}
	cloudd, cloudAddr := startCloudd(t)
	defer cloudd.kill()

	// Reference: single-process campaign over the same daemon.
	out, code := runCLI(t, "whowas",
		"-cloud-addr", cloudAddr, "-rounds", "2",
		"-cluster=false", "-carto=false", "-q")
	if code != 0 {
		t.Fatalf("single-process whowas exit %d:\n%s", code, out)
	}
	want := digestFrom(t, out)

	// pollFleet one-shots `whowas-query fleet` against a live
	// coordinator until the dashboard contains every wanted substring
	// (worker rows and history events appear as heartbeats arrive).
	pollFleet := func(t *testing.T, coordAddr string, wants ...string) string {
		t.Helper()
		deadline := time.Now().Add(45 * time.Second)
		var last string
		for {
			out, code := runCLI(t, "whowas-query", "fleet", "-history", "64", coordAddr)
			if code == 0 {
				last = out
				ok := true
				for _, w := range wants {
					if !strings.Contains(out, w) {
						ok = false
						break
					}
				}
				if ok {
					return out
				}
			}
			if time.Now().After(deadline) {
				t.Fatalf("fleet dashboard never showed %q; last output:\n%s", wants, last)
			}
			time.Sleep(150 * time.Millisecond)
		}
	}

	runFleet := func(t *testing.T, workers int, chaos bool) string {
		journal := filepath.Join(t.TempDir(), "journal.jsonl")
		coordArgs := []string{
			"-cloud-addr", cloudAddr, "-addr", "127.0.0.1:0",
			"-rounds", "2", "-q", "-trace-journal", journal,
		}
		if chaos {
			coordArgs = append(coordArgs, "-lease-ttl", "1s")
		}
		coord := startProc(t, "whowas-coordinator", coordArgs...)
		line := coord.awaitLine("coordinator listening on http://", 30*time.Second)
		coordAddr := line[strings.Index(line, "http://")+len("http://"):]
		coordAddr = coordAddr[:strings.Index(coordAddr, " ")]

		procs := make([]*proc, workers)
		for i := range procs {
			procs[i] = startProc(t, "whowas",
				"-worker", "-coordinator-addr", coordAddr,
				"-worker-id", fmt.Sprintf("e2e-w%d", i))
		}
		if chaos {
			// SIGKILL the first worker the moment it starts probing a
			// shard: no submit, no further heartbeats, no goodbye.
			procs[0].awaitLine("running round", time.Minute)
			procs[0].kill()
			t.Log("killed worker e2e-w0 mid-shard")
			// The dashboard must record the death while the campaign is
			// still running: an expired lease in the status history and
			// the survivor still reporting.
			out := pollFleet(t, coordAddr, "lease_expired", "e2e-w1")
			t.Logf("fleet dashboard after kill:\n%s", out)
		} else {
			// A healthy fleet shows a live worker row for each worker.
			pollFleet(t, coordAddr, "e2e-w0")
		}
		if code := coord.wait(3 * time.Minute); code != 0 {
			t.Fatalf("coordinator exit %d:\n%s", code, coord.output())
		}
		for i, p := range procs {
			if chaos && i == 0 {
				continue
			}
			if code := p.wait(time.Minute); code != 0 {
				t.Fatalf("worker %d exit %d:\n%s", i, code, p.output())
			}
		}

		// The merged journal reconstructs the distributed campaign:
		// round spans from the coordinator, worker shard spans stamped
		// with the identity that ran them.
		out, code := runCLI(t, "whowas-query", "trace", "-journal", journal, "-slowest", "8")
		if code != 0 {
			t.Fatalf("whowas-query trace on coordinator journal exit %d:\n%s", code, out)
		}
		if !strings.Contains(out, "worker=e2e-w") {
			t.Errorf("journal trace has no worker-attributed spans:\n%s", out)
		}
		if !strings.Contains(out, "round  0") && !strings.Contains(out, "round 0") {
			t.Errorf("journal trace missing round breakdown:\n%s", out)
		}
		return digestFrom(t, coord.output())
	}

	t.Run("one-worker", func(t *testing.T) {
		if got := runFleet(t, 1, false); got != want {
			t.Errorf("1-worker digest %s != single-process %s", got, want)
		}
	})
	t.Run("two-workers-one-killed", func(t *testing.T) {
		if got := runFleet(t, 2, true); got != want {
			t.Errorf("chaos fleet digest %s != single-process %s", got, want)
		}
	})
}

// TestCoordinatorBadFlags covers the coordinator's failure exits.
func TestCoordinatorBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e suite skipped in -short mode")
	}
	if out, code := runCLI(t, "whowas-coordinator"); code == 0 {
		t.Errorf("coordinator without -cloud-addr succeeded:\n%s", out)
	}
	if out, code := runCLI(t, "whowas", "-worker"); code == 0 {
		t.Errorf("whowas -worker without -coordinator-addr succeeded:\n%s", out)
	}
}

// TestBenchPipelineSmoke exercises whowas-bench's sharded-pipeline
// benchmark, which doubles as its own digest-identity gate.
func TestBenchPipelineSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e suite skipped in -short mode")
	}
	outPath := filepath.Join(t.TempDir(), "bench.json")
	out, code := runCLI(t, "whowas-bench",
		"-pipeline-bench", outPath, "-ec2-scale", e2eScale, "-q")
	if code != 0 {
		t.Fatalf("whowas-bench exit %d:\n%s", code, out)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("-pipeline-bench output is not JSON: %v", err)
	}
}

// TestLintCLI exercises whowas-lint: the analyzer catalogue and a
// real single-package run.
func TestLintCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e suite skipped in -short mode")
	}
	out, code := runCLI(t, "whowas-lint", "-rules")
	if code != 0 {
		t.Fatalf("whowas-lint -rules exit %d:\n%s", code, out)
	}
	for _, rule := range []string{"determinism", "ctxfirst", "lockdisc"} {
		if !strings.Contains(out, rule) {
			t.Errorf("rule catalogue missing %q:\n%s", rule, out)
		}
	}
	cmd := exec.Command(bin("whowas-lint"), "./internal/atomicfile")
	cmd.Dir = repoRoot()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("whowas-lint ./internal/atomicfile: %v\n%s", err, out)
	}
}

// TestLintJSONContract pins whowas-lint's machine-readable contract:
// -json prints a findings array on stdout (empty array when clean),
// the exit code is 1 when findings survive and 2 on a bad invocation,
// and -analyzers narrows the run. It drives the binary over the lint
// fixture module, whose findings are pinned by the golden tests.
func TestLintJSONContract(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e suite skipped in -short mode")
	}
	fixture := filepath.Join(repoRoot(), "internal", "lint", "testdata", "src", "fixture")
	lintRun := func(args ...string) (string, string, int) {
		t.Helper()
		cmd := exec.Command(bin("whowas-lint"), args...)
		cmd.Dir = fixture
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		code := 0
		if err := cmd.Run(); err != nil {
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("whowas-lint %s: %v", strings.Join(args, " "), err)
			}
			code = ee.ExitCode()
		}
		return stdout.String(), stderr.String(), code
	}

	type finding struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Col  int    `json:"col"`
		Rule string `json:"rule"`
		Msg  string `json:"msg"`
	}

	// A package with a known finding: exit 1, one structured finding.
	stdout, _, code := lintRun("-json", "./internal/relay")
	if code != 1 {
		t.Fatalf("dirty package: exit %d, want 1\nstdout:\n%s", code, stdout)
	}
	var findings []finding
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil {
		t.Fatalf("-json stdout is not a findings array: %v\n%s", err, stdout)
	}
	if len(findings) != 1 {
		t.Fatalf("findings = %+v, want exactly one", findings)
	}
	f := findings[0]
	if f.Rule != "errcheck/discard" || f.Line <= 0 || f.Col <= 0 ||
		filepath.ToSlash(f.File) != "internal/relay/relay.go" {
		t.Errorf("finding = %+v, want errcheck/discard in internal/relay/relay.go with a position", f)
	}

	// Narrowing to an analyzer with nothing to say there: exit 0 and an
	// empty — but present — array.
	stdout, _, code = lintRun("-json", "-analyzers", "atomicwrite", "./internal/relay")
	if code != 0 {
		t.Fatalf("narrowed clean run: exit %d, want 0\nstdout:\n%s", code, stdout)
	}
	if err := json.Unmarshal([]byte(stdout), &findings); err != nil || len(findings) != 0 {
		t.Errorf("narrowed clean run stdout = %q, want an empty JSON array", stdout)
	}

	// An unknown analyzer name is an invocation error: exit 2.
	_, stderr, code := lintRun("-json", "-analyzers", "nosuch", "./internal/relay")
	if code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "nosuch") {
		t.Errorf("unknown-analyzer stderr does not name the analyzer:\n%s", stderr)
	}
}
