// Command whowas-query answers the platform's headline question over a
// collected store: "who was at this IP, and when?" It also prints the
// aggregate tables the analysis engines produce.
//
// Usage:
//
//	whowas-query -store ec2.whowas -ip 54.0.3.17     # per-round history
//	whowas-query -store ec2.whowas -summary          # Tables 3/4/5/7
//	whowas-query -store ec2.whowas -census           # §8.3 census
//	whowas-query -store ec2.whowas -trackers         # Table 20
//	whowas-query -store-dir ec2.colstore -summary    # columnar store
//	whowas-query -store ec2.whowas -to-dir ec2.colstore  # gob → columnar
//	whowas-query -store-dir ec2.colstore -digest     # identity check
//
// Gob stores open lazily: single-round commands such as -summary and
// -json decode only the rounds they touch instead of loading the whole
// file. -store-dir reads a columnar segment directory written by
// whowas -store-dir, and -to-dir converts either form to one,
// streaming round by round. -digest prints the backend-independent
// store digest.
//
// The trace subcommand reads a span journal written with
// -trace-journal and prints each round's stage latency breakdown plus
// its slowest spans:
//
//	whowas-query trace -journal run.jsonl
//	whowas-query trace -journal run.jsonl -slowest 10
//
// The cloud subcommand interrogates a running whowas-cloudd daemon:
// liveness, configuration, and a ground-truth census of one day:
//
//	whowas-query cloud -addr 127.0.0.1:8390
//	whowas-query cloud -addr 127.0.0.1:8390 -day 30
//
// The fleet subcommand is the live dashboard over a running
// coordinator: per-worker probe throughput, lease TTLs, budget slices,
// shard progress, and the status-history tail (expired leases,
// re-assigned shards, degraded rounds):
//
//	whowas-query fleet 127.0.0.1:8391
//	whowas-query fleet 127.0.0.1:8391 -watch
//	whowas-query fleet 127.0.0.1:8391 -prom        # raw exposition
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"whowas/internal/analysis"
	"whowas/internal/ipaddr"
	"whowas/internal/store"
	"whowas/internal/store/colstore"
	"whowas/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "trace" {
		if err := runTrace(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "whowas-query: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "cloud" {
		if err := runCloud(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "whowas-query: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "fleet" {
		if err := runFleet(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "whowas-query: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var o queryOptions
	flag.StringVar(&o.storePath, "store", "", "path to a store written by whowas -out")
	flag.StringVar(&o.storeDir, "store-dir", "", "path to a columnar segment directory written by whowas -store-dir")
	flag.StringVar(&o.ip, "ip", "", "IP address to look up")
	flag.Int64Var(&o.clusterID, "cluster", 0, "cluster ID to inspect")
	flag.BoolVar(&o.summary, "summary", false, "print usage tables (3/4/5/7)")
	flag.BoolVar(&o.census, "census", false, "print the §8.3 software census")
	flag.BoolVar(&o.trackers, "trackers", false, "print the Table 20 tracker census")
	flag.IntVar(&o.jsonRound, "json", -1, "export the given round as JSON to stdout")
	flag.BoolVar(&o.digest, "digest", false, "print the store digest (identical across gob and columnar backends)")
	flag.StringVar(&o.toDir, "to-dir", "", "convert the store to a columnar segment directory at this path, one round at a time")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "whowas-query: %v\n", err)
		os.Exit(1)
	}
}

// queryOptions collects the store-querying flags (the trace/cloud/fleet
// subcommands parse their own).
type queryOptions struct {
	storePath string
	storeDir  string
	ip        string
	clusterID int64
	summary   bool
	census    bool
	trackers  bool
	jsonRound int
	digest    bool
	toDir     string
}

// openStore opens the requested store without decoding its rounds: gob
// files through the lazy FileBackend (frames are scanned, records stay
// on disk until a command asks for a round), segment directories
// through the columnar backend.
func openStore(o queryOptions) (*store.Store, error) {
	switch {
	case o.storePath != "" && o.storeDir != "":
		return nil, fmt.Errorf("-store and -store-dir are mutually exclusive")
	case o.storeDir != "":
		b, err := colstore.Open(o.storeDir, colstore.Options{})
		if err != nil {
			return nil, err
		}
		if b.NumRounds() == 0 {
			_ = b.Close()
			return nil, fmt.Errorf("%s holds no round segments (not a store directory?)", o.storeDir)
		}
		return store.NewWithBackend(b.CloudName(), b), nil
	case o.storePath != "":
		return store.OpenFile(o.storePath)
	default:
		return nil, fmt.Errorf("-store or -store-dir is required")
	}
}

func run(o queryOptions) error {
	st, err := openStore(o)
	if err != nil {
		return err
	}
	defer func() {
		if err := st.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "whowas-query: closing store: %v\n", err)
		}
	}()
	fmt.Printf("store: cloud=%s rounds=%d\n", st.CloudName, st.NumRounds())

	did := false
	ip, clusterID := o.ip, o.clusterID
	summary, census, trackers, jsonRound := o.summary, o.census, o.trackers, o.jsonRound
	if ip != "" {
		did = true
		addr, err := ipaddr.ParseAddr(ip)
		if err != nil {
			return err
		}
		if err := printHistory(st, addr); err != nil {
			return err
		}
	}
	if summary {
		did = true
		fmt.Println(analysis.Usage(st).Format(st.CloudName))
		fmt.Println(analysis.Ports(st).Format(st.CloudName))
		fmt.Println(analysis.Statuses(st).Format(st.CloudName))
		fmt.Println(analysis.FormatContentTypes(st.CloudName, analysis.ContentTypes(st, 5)))
	}
	if census {
		did = true
		fmt.Println(analysis.Census(st).Format(st.CloudName))
	}
	if trackers {
		did = true
		fmt.Println(analysis.Trackers(st).Format(st.CloudName))
	}
	if clusterID != 0 {
		did = true
		printCluster(st, clusterID)
	}
	if jsonRound >= 0 {
		did = true
		if err := st.ExportJSON(os.Stdout, jsonRound); err != nil {
			return err
		}
	}
	if o.digest {
		did = true
		digest, err := st.Digest()
		if err != nil {
			return err
		}
		fmt.Printf("store digest: %s\n", digest)
	}
	if o.toDir != "" {
		did = true
		if err := convertToDir(st, o.toDir); err != nil {
			return err
		}
		fmt.Printf("columnar store written to %s (%d rounds)\n", o.toDir, st.NumRounds())
	}
	if !did {
		return fmt.Errorf("nothing to do: pass -ip, -cluster, -summary, -census, -trackers, -json, -digest or -to-dir")
	}
	return nil
}

// convertToDir streams the open store into a columnar segment
// directory, one round at a time — a gob file is never fully resident.
func convertToDir(st *store.Store, dir string) error {
	src := st.Backend()
	dst, err := colstore.Open(dir, colstore.Options{CloudName: st.CloudName})
	if err != nil {
		return err
	}
	if n := dst.NumRounds(); n != 0 {
		_ = dst.Close()
		return fmt.Errorf("convert: %s already holds %d rounds", dir, n)
	}
	for i := 0; i < src.NumRounds(); i++ {
		meta, err := src.Meta(i)
		if err != nil {
			_ = dst.Close()
			return err
		}
		recs, err := src.Records(i)
		if err != nil {
			_ = dst.Close()
			return err
		}
		if err := dst.Append(meta, recs); err != nil {
			_ = dst.Close()
			return err
		}
	}
	return dst.Close()
}

// runTrace is the trace subcommand: load a span journal and print the
// per-round flight-recorder view.
func runTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	journalPath := fs.String("journal", "", "path to a span journal written with -trace-journal")
	slowest := fs.Int("slowest", 5, "slowest spans to print per round")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *journalPath == "" {
		return fmt.Errorf("trace: -journal is required")
	}
	spans, err := trace.LoadJournal(*journalPath)
	if err != nil {
		return err
	}
	rounds := trace.BreakdownRounds(spans)
	fmt.Printf("journal: %d spans, %d rounds\n", len(spans), len(rounds))
	for _, rb := range rounds {
		suffix := ""
		if rb.Degraded {
			suffix = " [degraded]"
		}
		fmt.Printf("round %2d (day %2d): total %s, %d spans, %d fault-injected%s\n",
			rb.Round, rb.Day, rb.Total.Round(time.Millisecond), rb.Spans, rb.FaultInjected, suffix)
		stages := make([]string, 0, len(rb.Stages))
		for name := range rb.Stages {
			stages = append(stages, name)
		}
		sort.Slice(stages, func(i, j int) bool { return rb.Stages[stages[i]] > rb.Stages[stages[j]] })
		for _, name := range stages {
			d := rb.Stages[name]
			pct := 0.0
			if rb.Total > 0 {
				pct = 100 * float64(d) / float64(rb.Total)
			}
			fmt.Printf("  %-16s %10s  %5.1f%%\n", name, d.Round(time.Millisecond), pct)
		}
		n := *slowest
		if n > len(rb.Slowest) {
			n = len(rb.Slowest)
		}
		for _, s := range rb.Slowest[:n] {
			fmt.Printf("  slow: %-8s %10s  %s\n", s.Name, s.Duration().Round(time.Microsecond), formatAttrs(s))
		}
	}
	return nil
}

// formatAttrs renders a span's attributes sorted by key.
func formatAttrs(s trace.SpanSnapshot) string {
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+s.Attrs[k])
	}
	return strings.Join(parts, " ")
}

// printCluster summarizes one cluster's footprint: per-round IP counts
// and representative features.
func printCluster(st *store.Store, id int64) {
	type roundInfo struct {
		day int
		ips map[ipaddr.Addr]bool
	}
	rounds := map[int]*roundInfo{}
	var sample *store.Record
	total := map[ipaddr.Addr]bool{}
	st.EachRound(func(r *store.Round) bool {
		r.Each(func(rec *store.Record) bool {
			if rec.Cluster != id {
				return true
			}
			ri := rounds[rec.Round]
			if ri == nil {
				ri = &roundInfo{day: rec.Day, ips: map[ipaddr.Addr]bool{}}
				rounds[rec.Round] = ri
			}
			ri.ips[rec.IP] = true
			total[rec.IP] = true
			if sample == nil {
				sample = rec
			}
			return true
		})
		return true
	})
	if sample == nil {
		fmt.Printf("cluster %d: not found\n", id)
		return
	}
	fmt.Printf("cluster %d: title=%q server=%q template=%q ga=%q\n",
		id, sample.Title, sample.Server, sample.Template, sample.AnalyticsID)
	fmt.Printf("  %d unique IPs across %d rounds\n", len(total), len(rounds))
	var order []int
	for r := range rounds {
		order = append(order, r)
	}
	sort.Ints(order)
	for _, r := range order {
		fmt.Printf("  round %2d (day %2d): %d IPs\n", r, rounds[r].day, len(rounds[r].ips))
	}
}

func printHistory(st *store.Store, addr ipaddr.Addr) error {
	hist := st.History(addr)
	if len(hist) == 0 {
		fmt.Printf("%s: never responsive during the campaign\n", addr)
		return nil
	}
	fmt.Printf("history of %s (%d observations):\n", addr, len(hist))
	fmt.Printf("  %-6s %-5s %-6s %-7s %-8s %-24s %-20s %s\n",
		"round", "day", "ports", "status", "cluster", "simhash", "server", "title")
	for _, rec := range hist {
		ports := ""
		if rec.OpenPorts&store.PortHTTP != 0 {
			ports += "80 "
		}
		if rec.OpenPorts&store.PortHTTPS != 0 {
			ports += "443 "
		}
		if rec.OpenPorts&store.PortSSH != 0 {
			ports += "22"
		}
		fmt.Printf("  %-6d %-5d %-6s %-7d %-8d %-24s %-20.20s %.40s\n",
			rec.Round, rec.Day, ports, rec.HTTPStatus, rec.Cluster, rec.Simhash, rec.Server, rec.Title)
	}
	return nil
}
