package main

import (
	"context"
	"flag"
	"fmt"
	"sort"
	"time"

	"whowas/internal/cloudapi"
)

// runCloud implements the cloud subcommand: interrogate a running
// whowas-cloudd daemon — liveness, configuration, and a ground-truth
// snapshot of one simulated day.
func runCloud(args []string) error {
	fs := flag.NewFlagSet("cloud", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8390", "whowas-cloudd control address")
	day := fs.Int("day", -1, "snapshot this simulated day (-1 = the daemon's current day)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	c, err := cloudapi.Dial(ctx, *addr)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Health(ctx); err != nil {
		return err
	}

	info := c.Info()
	fmt.Printf("cloud: %s (%s, seed %d)\n", info.Name, info.Kind, info.Seed)
	fmt.Printf("  days: %d (current day %d)\n", info.Days, c.Day())
	fmt.Printf("  address space: %d probed IPs across %d regions (base octet %d)\n",
		c.Ranges().Total(), len(info.Regions), info.BaseOctet)
	for _, r := range info.Regions {
		fmt.Printf("    %-12s %d /22 prefixes (%d VPC)\n", r.Name, r.Prefixes22, r.VPC22)
	}
	fmt.Printf("  data plane: %d listeners\n", len(info.DataAddrs))
	for _, a := range info.DataAddrs {
		fmt.Printf("    %s\n", a)
	}

	snapDay := *day
	if snapDay < 0 {
		snapDay = c.Day()
	}
	snap, err := c.Snapshot(ctx, snapDay)
	if err != nil {
		return err
	}
	fmt.Printf("ground truth, day %d:\n", snap.Day)
	fmt.Printf("  bound %d  web %d  slow %d  http-fail %d  down %d  services %d\n",
		snap.Bound, snap.Web, snap.Slow, snap.HTTPFail, snap.Down, snap.Services)
	regions := make([]string, 0, len(snap.ByRegion))
	for r := range snap.ByRegion {
		regions = append(regions, r)
	}
	sort.Strings(regions)
	for _, r := range regions {
		fmt.Printf("  region %-12s %d bound\n", r, snap.ByRegion[r])
	}
	return nil
}
