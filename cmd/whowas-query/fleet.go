package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"whowas/internal/coord"
	"whowas/internal/fleetobs"
)

// runFleet implements the fleet subcommand: a live dashboard over a
// running coordinator's /coord/fleet document — per-worker throughput,
// lease TTLs and budget slices, shard progress, and the status-history
// tail (degraded rounds, expired leases, re-assigned shards).
func runFleet(args []string) error {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	addrFlag := fs.String("addr", "", "coordinator address (or pass it as the positional argument)")
	watch := fs.Bool("watch", false, "refresh continuously until the campaign is done")
	interval := fs.Duration("interval", 2*time.Second, "refresh interval with -watch")
	histN := fs.Int("history", 10, "status-history tail length to print (0 = none)")
	promRaw := fs.Bool("prom", false, "dump the raw /metrics/prom exposition instead of the dashboard")
	if err := fs.Parse(args); err != nil {
		return err
	}
	addr := *addrFlag
	if addr == "" {
		addr = fs.Arg(0)
	}
	if addr == "" {
		return fmt.Errorf("fleet: coordinator address required (positional or -addr)")
	}
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimSuffix(base, "/")

	hc := &http.Client{Timeout: 10 * time.Second}
	if *promRaw {
		return dumpBody(hc, base+"/metrics/prom", os.Stdout)
	}
	if !*watch {
		fleet, err := fetchFleet(hc, base)
		if err != nil {
			return err
		}
		renderFleet(os.Stdout, addr, fleet, *histN)
		return nil
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for {
		fleet, err := fetchFleet(hc, base)
		if err != nil {
			return err
		}
		// Home the cursor and clear: a terminal dashboard, not a log.
		fmt.Print("\033[H\033[2J")
		renderFleet(os.Stdout, addr, fleet, *histN)
		if fleet.Status.Done {
			return nil
		}
		select {
		case <-sig:
			return nil
		case <-tick.C:
		}
	}
}

func fetchFleet(hc *http.Client, base string) (*coord.Fleet, error) {
	resp, err := hc.Get(base + "/coord/fleet")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<12))
		return nil, fmt.Errorf("fleet: GET /coord/fleet: %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var fleet coord.Fleet
	if err := json.NewDecoder(resp.Body).Decode(&fleet); err != nil {
		return nil, fmt.Errorf("fleet: decoding /coord/fleet: %w", err)
	}
	return &fleet, nil
}

func dumpBody(hc *http.Client, url string, w io.Writer) error {
	resp, err := hc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: GET %s: %d", url, resp.StatusCode)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

func renderFleet(w io.Writer, addr string, f *coord.Fleet, histN int) {
	st := f.Status
	fmt.Fprintf(w, "fleet @ %s — cloud %s", addr, st.Cloud)
	switch {
	case st.Done:
		fmt.Fprintf(w, ", campaign done (%d/%d rounds)\n", st.RoundsCompleted, st.RoundsTotal)
	case st.Round >= 0:
		fmt.Fprintf(w, ", round %d/%d (day %d): %d pending / %d assigned / %d done\n",
			st.Round+1, st.RoundsTotal, st.Day,
			st.ShardsPending, st.ShardsAssigned, st.ShardsDone)
	default:
		fmt.Fprintf(w, ", idle (%d/%d rounds)\n", st.RoundsCompleted, st.RoundsTotal)
	}
	if st.Unlimited {
		fmt.Fprintf(w, "budget: unlimited (simulation speed), %d lease(s)", len(st.Workers))
	} else {
		util := 0.0
		if st.Rate > 0 {
			util = 100 * st.LeasedRate / st.Rate
		}
		fmt.Fprintf(w, "budget: %.0f pps, leased %.0f (%.1f%%)", st.Rate, st.LeasedRate, util)
	}
	fmt.Fprintf(w, "   fleet rate: %.1f probes/sec\n\n", f.ProbesPerSec)

	fmt.Fprintf(w, "%-12s %9s %10s %9s %8s %7s %6s %6s %11s %9s\n",
		"WORKER", "SEEN", "RATE(pps)", "PROBES", "RESP", "PAGES", "ERRS", "RETR", "LEASE(pps)", "TTL(ms)")
	for _, wv := range f.Workers {
		lease, ttl := "-", "-"
		if wv.Lease != nil {
			// An unlimited campaign leases slices of the simulation-speed
			// sentinel rate; the number is meaningless, so elide it.
			if st.Unlimited {
				lease = "unlim"
			} else {
				lease = fmt.Sprintf("%.0f", wv.Lease.Rate)
			}
			ttl = fmt.Sprintf("%d", wv.Lease.ExpiresInMS)
		}
		fmt.Fprintf(w, "%-12s %8.1fs %10.1f %9d %8d %7d %6d %6d %11s %9s\n",
			wv.Worker, float64(wv.SeenAgoMS)/1000, wv.ProbesPerSec,
			wv.Probes, wv.Responsive, wv.Pages, wv.FetchErrors, wv.Retries,
			lease, ttl)
	}
	if len(f.Workers) == 0 {
		fmt.Fprintln(w, "(no worker reports yet)")
	}

	if histN > 0 && len(f.History) > 0 {
		recs := f.History
		if len(recs) > histN {
			recs = recs[len(recs)-histN:]
		}
		fmt.Fprintf(w, "\nhistory (%d of %d):\n", len(recs), f.HistoryTotal)
		for _, rec := range recs {
			fmt.Fprintf(w, "  %s  %s\n",
				time.UnixMilli(rec.TimeMS).Format("15:04:05.000"), historyLine(rec))
		}
	}
}

// historyLine renders one status record as a compact event line.
func historyLine(rec fleetobs.StatusRecord) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-13s", rec.Event)
	if rec.Worker != "" {
		fmt.Fprintf(&b, " worker=%s", rec.Worker)
	}
	if rec.Round >= 0 {
		fmt.Fprintf(&b, " round=%d day=%d shards=%d/%d/%d",
			rec.Round, rec.Day, rec.ShardsPending, rec.ShardsAssigned, rec.ShardsDone)
	}
	if rec.Degraded {
		b.WriteString(" degraded")
	}
	if rec.LeasesExpired > 0 {
		fmt.Fprintf(&b, " leases_expired=%d", rec.LeasesExpired)
	}
	if rec.ShardsReassigned > 0 {
		fmt.Fprintf(&b, " reassigned=%d", rec.ShardsReassigned)
	}
	if rec.QuotaUtilization > 0 {
		fmt.Fprintf(&b, " quota=%.0f%%", 100*rec.QuotaUtilization)
	}
	return b.String()
}
