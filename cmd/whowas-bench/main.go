// Command whowas-bench regenerates every table and figure of the
// paper's evaluation over freshly simulated clouds and prints a
// combined report. It drives the same experiment suite as the
// testing.B benchmarks in bench_test.go.
//
// Usage:
//
//	whowas-bench                 # full suite at default scale
//	whowas-bench -ec2-scale 256 -azure-scale 64
//	whowas-bench -only table7,figure9
//	whowas-bench -faults scenarios/chaos.json  # evaluation over a degraded network
//	whowas-bench -faults scenarios/chaos.json -retries 3 -round-timeout 30s
//	whowas-bench -ops-addr 127.0.0.1:8377 -trace-journal run.jsonl
//	whowas-bench -pipeline-bench BENCH_pipeline.json  # sharded-round smoke benchmark
//	WHOWAS_SCALE=4 whowas-bench  # shrink everything 4x
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"whowas/internal/atomicfile"
	"whowas/internal/core"
	"whowas/internal/experiments"
	"whowas/internal/faults"
	"whowas/internal/metrics"
	"whowas/internal/ops"
	"whowas/internal/trace"
)

func main() {
	var (
		ec2Scale     = flag.Int("ec2-scale", 0, "EC2 scale divisor (default 128)")
		azureScale   = flag.Int("azure-scale", 0, "Azure scale divisor (default 32)")
		seed         = flag.Int64("seed", 0, "simulation seed (default fixed)")
		only         = flag.String("only", "", "comma-separated experiment IDs to print (default all)")
		csvDir       = flag.String("csv", "", "also write each figure's data series as CSV into this directory")
		quiet        = flag.Bool("q", false, "suppress progress logging")
		metricsPath  = flag.String("metrics", "", "write both campaigns' metrics reports (round reports + registry snapshots) as JSON to this path")
		faultsPath   = flag.String("faults", "", "run both campaigns through this JSON fault scenario (see internal/faults)")
		retries      = flag.Int("retries", 0, "probe/fetch attempts per target (0 = defaults: 1, or 3 with -faults)")
		roundTimeout = flag.Duration("round-timeout", 0, "per-round deadline; an exceeded round finalizes degraded with partial records (0 = none)")
		opsAddr      = flag.String("ops-addr", "", "serve the live ops endpoint (/healthz, /metrics, /trace/*, pprof) on this address")
		journalPath  = flag.String("trace-journal", "", "append completed spans as JSONL to this path (crash-safe; read with whowas-query trace)")
		shards       = flag.Int("pipeline-shards", 0, "round pipeline region lanes (0 = one per region, 1 = unsharded)")
		pipeBench    = flag.String("pipeline-bench", "", "instead of the suite, run the sharded-pipeline smoke benchmark (shards=1 vs shards=regions) and write its JSON result to this path")
		pipeBaseline = flag.String("pipeline-baseline", "", "with -pipeline-bench: compare against this committed baseline JSON and exit non-zero on digest drift or throughput regression")
		pipeTol      = flag.Float64("pipeline-tolerance", 0, "with -pipeline-baseline: allowed fractional throughput regression (0 = default 0.35)")
		storeBench   = flag.String("store-bench", "", "instead of the suite, benchmark the store backends (in-memory vs columnar) on a synthetic campaign and write the JSON result to this path")
		storeBase    = flag.String("store-baseline", "", "with -store-bench: compare against this committed baseline JSON and exit non-zero on digest/footprint drift or write-path regression")
		storeTol     = flag.Float64("store-tolerance", 0, "with -store-baseline: allowed fractional write-path regression (0 = default 0.35)")
		storeRounds  = flag.Int("store-rounds", 0, "with -store-bench: rounds in the synthetic campaign (0 = default 10)")
		storePer     = flag.Int("store-per-round", 0, "with -store-bench: IP pool size per round (0 = default 5000)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *storeBench != "" {
		res, err := experiments.StoreBench(*storeRounds, *storePer)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		if err := atomicfile.WriteFile(*storeBench, append(data, '\n')); err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		for _, b := range res.Backends {
			fmt.Fprintf(os.Stderr, "[bench] store %-8s put %6d  batch %6d  end %6d  history %6d  digest %6d ns/op, %d bytes on disk\n",
				b.Name+":", b.PutNsOp, b.PutBatchNsOp, b.EndRoundNsOp, b.HistoryNsOp, b.DigestNsOp, b.BytesOnDisk)
		}
		fmt.Fprintf(os.Stderr, "[bench] store: %d rounds, %d records, digests match: %v\n",
			res.Rounds, res.Records, res.DigestsMatch)
		fmt.Fprintf(os.Stderr, "[bench] wrote %s\n", *storeBench)
		if !res.DigestsMatch {
			fmt.Fprintln(os.Stderr, "whowas-bench: in-memory and columnar store digests diverged")
			os.Exit(1)
		}
		if *storeBase != "" {
			raw, err := os.ReadFile(*storeBase)
			if err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
				os.Exit(1)
			}
			var base experiments.StoreBenchResult
			if err := json.Unmarshal(raw, &base); err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: parsing %s: %v\n", *storeBase, err)
				os.Exit(1)
			}
			if err := experiments.CompareStoreBench(res, &base, *storeTol); err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[bench] baseline gate passed against %s\n", *storeBase)
		}
		return
	}

	if *pipeBench != "" {
		res, err := experiments.PipelineBench(ctx, *ec2Scale, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		if err := atomicfile.WriteFile(*pipeBench, append(data, '\n')); err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[bench] pipeline: %d regions, speedup %.2fx, digests match: %v\n",
			res.Regions, res.Speedup, res.DigestsMatch)
		fmt.Fprintf(os.Stderr, "[bench] wrote %s\n", *pipeBench)
		if !res.DigestsMatch {
			fmt.Fprintln(os.Stderr, "whowas-bench: sharded and unsharded store digests diverged")
			os.Exit(1)
		}
		if *pipeBaseline != "" {
			raw, err := os.ReadFile(*pipeBaseline)
			if err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
				os.Exit(1)
			}
			var base experiments.PipelineBenchResult
			if err := json.Unmarshal(raw, &base); err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: parsing %s: %v\n", *pipeBaseline, err)
				os.Exit(1)
			}
			if err := experiments.ComparePipelineBench(res, &base, *pipeTol); err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[bench] baseline gate passed against %s\n", *pipeBaseline)
		}
		return
	}

	opts := experiments.Options{
		EC2Scale:       *ec2Scale,
		AzureScale:     *azureScale,
		Seed:           *seed,
		Retries:        *retries,
		RoundTimeout:   *roundTimeout,
		PipelineShards: *shards,
	}
	if *faultsPath != "" {
		sc, err := faults.LoadFile(*faultsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		opts.Faults = sc
	}
	if !*quiet {
		opts.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "[bench] "+format+"\n", args...)
		}
	}

	if *journalPath != "" || *opsAddr != "" {
		tcfg := trace.Config{}
		if *journalPath != "" {
			j, err := trace.CreateJournal(*journalPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
				os.Exit(1)
			}
			tcfg.Journal = j
		}
		opts.Tracer = trace.New(tcfg)
		defer func() {
			if err := opts.Tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: closing trace journal: %v\n", err)
			} else if *journalPath != "" {
				fmt.Fprintf(os.Stderr, "[bench] wrote %s\n", *journalPath)
			}
		}()
	}
	if *opsAddr != "" {
		// The suite runs two sequential campaigns on separate
		// platforms; a shared registry and a round accumulator give the
		// ops endpoint one combined live view.
		opts.Metrics = metrics.NewRegistry()
		var roundsMu sync.Mutex
		var rounds []core.RoundReport
		opts.Observe = func(cloud string, r core.RoundReport) {
			roundsMu.Lock()
			defer roundsMu.Unlock()
			rounds = append(rounds, r)
		}
		srv := ops.New(ops.Config{
			Metrics: opts.Metrics,
			Tracer:  opts.Tracer,
			Rounds: func() []core.RoundReport {
				roundsMu.Lock()
				defer roundsMu.Unlock()
				return append([]core.RoundReport(nil), rounds...)
			},
		})
		addr, err := srv.Start(*opsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[bench] ops endpoint listening on http://%s\n", addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
	}

	start := time.Now()
	suite, err := experiments.Run(ctx, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
		os.Exit(1)
	}
	all, err := suite.All(ctx)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
		os.Exit(1)
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	for _, exp := range all {
		if len(want) > 0 && !want[exp.ID] {
			continue
		}
		fmt.Printf("==== %s — %s ====\n%s\n", exp.ID, exp.Title, exp.Output)
	}
	if *metricsPath != "" {
		data, err := json.MarshalIndent(suite.CampaignReports(), "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		if err := atomicfile.WriteFile(*metricsPath, append(data, '\n')); err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "[bench] wrote %s\n", *metricsPath)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
			os.Exit(1)
		}
		for stem, data := range suite.FigureCSVs() {
			path := filepath.Join(*csvDir, stem+".csv")
			if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "whowas-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "[bench] wrote %s\n", path)
		}
	}
	fmt.Fprintf(os.Stderr, "[bench] suite completed in %s\n", time.Since(start))
}
