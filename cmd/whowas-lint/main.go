// Command whowas-lint runs WhoWas's project-invariant static-analysis
// suite (internal/lint) over the module: determinism of the
// digest-feeding packages, nil-safety of the metrics/trace handles,
// context-first I/O signatures, crash-safety error discipline, and
// lock discipline. It exits non-zero when any diagnostic survives the
// //lint:allow suppressions, which is what lets CI gate on it.
//
// Usage:
//
//	whowas-lint [-v] [-rules] [packages...]
//
// Packages default to ./... (the whole module). Patterns accept
// ./dir, ./dir/..., and full import paths.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"whowas/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "list the packages as they are checked")
	rules := flag.Bool("rules", false, "print the analyzer catalogue and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: whowas-lint [-v] [-rules] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.DefaultSuite()
	if *rules {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	if err := run(suite, flag.Args(), *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "whowas-lint:", err)
		os.Exit(2)
	}
}

func run(suite *lint.Suite, patterns []string, verbose bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	if verbose {
		for _, p := range pkgs {
			fmt.Fprintln(os.Stderr, "checking", p.Path)
		}
	}
	diags := suite.Run(pkgs)
	for _, d := range diags {
		// Print module-relative paths: stable across machines, and what
		// editors and CI annotations expect.
		if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "whowas-lint: %d diagnostic(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "whowas-lint: %d package(s) clean\n", len(pkgs))
	}
	return nil
}
