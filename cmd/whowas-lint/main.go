// Command whowas-lint runs WhoWas's project-invariant static-analysis
// suite (internal/lint) over the module: determinism of the
// digest-feeding packages, nil-safety of the metrics/trace handles,
// context-first I/O signatures, crash-safety error discipline, lock
// discipline, and the call-graph analyzers — goroutine join paths,
// wire-struct json tags, atomic persistence writes, and rate-budget
// domination of probe dials. It exits non-zero when any diagnostic
// survives the //lint:allow suppressions, which is what lets CI gate
// on it.
//
// Usage:
//
//	whowas-lint [-v] [-rules] [-json] [-analyzers a,b,...] [packages...]
//
// Packages default to ./... (the whole module). Patterns accept
// ./dir, ./dir/..., and full import paths. -json prints findings as a
// JSON array (empty array when clean) for CI annotation; -analyzers
// narrows the run to a comma-separated subset of the catalogue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"whowas/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "list the packages as they are checked")
	rules := flag.Bool("rules", false, "print the analyzer catalogue and exit")
	jsonOut := flag.Bool("json", false, "print findings as a JSON array on stdout")
	analyzers := flag.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: whowas-lint [-v] [-rules] [-json] [-analyzers a,b,...] [packages...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := lint.DefaultSuite()
	if *rules {
		for _, a := range suite.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *analyzers != "" {
		if err := suite.Select(strings.Split(*analyzers, ",")); err != nil {
			fmt.Fprintln(os.Stderr, "whowas-lint:", err)
			os.Exit(2)
		}
	}

	if err := run(suite, flag.Args(), *verbose, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "whowas-lint:", err)
		os.Exit(2)
	}
}

// finding is the -json output shape: one object per diagnostic, with
// the position split out so CI annotators need no parsing.
type finding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

func run(suite *lint.Suite, patterns []string, verbose, jsonOut bool) error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		return err
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		return err
	}
	if verbose {
		for _, p := range pkgs {
			fmt.Fprintln(os.Stderr, "checking", p.Path)
		}
	}
	diags := suite.Run(pkgs)
	// Print module-relative paths: stable across machines, and what
	// editors and CI annotations expect.
	for i := range diags {
		if rel, err := filepath.Rel(cwd, diags[i].Pos.Filename); err == nil {
			diags[i].Pos.Filename = rel
		}
	}
	if jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
				Rule: d.Rule, Msg: d.Msg,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if n := len(diags); n > 0 {
		fmt.Fprintf(os.Stderr, "whowas-lint: %d diagnostic(s) in %d package(s)\n", n, len(pkgs))
		os.Exit(1)
	}
	if verbose {
		fmt.Fprintf(os.Stderr, "whowas-lint: %d package(s) clean\n", len(pkgs))
	}
	return nil
}
