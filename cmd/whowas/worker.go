// The -worker mode: this process stops being a self-contained
// campaign and becomes one lane of a distributed one. It registers
// with a whowas-coordinator, leases a slice of the fleet's global §7
// probe budget, and runs assigned region shards (the same
// scan→fetch→featurize lane as the single-process round) against the
// shared whowas-cloudd, streaming results back until the coordinator
// says the campaign is done.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"whowas/internal/atomicfile"
	"whowas/internal/coord"
	"whowas/internal/metrics"
	"whowas/internal/ops"
)

func runWorker(ctx context.Context, o options) error {
	if o.coordAddr == "" {
		return fmt.Errorf("-worker requires -coordinator-addr")
	}
	reg := metrics.NewRegistry()
	wcfg := coord.WorkerConfig{
		Coordinator: o.coordAddr,
		ID:          o.workerID,
		Metrics:     reg,
	}
	if !o.quiet {
		wcfg.Logf = func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		}
	}
	w, err := coord.NewWorker(wcfg)
	if err != nil {
		return err
	}
	defer func() {
		if err := w.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "whowas: closing worker: %v\n", err)
		}
	}()

	if o.opsAddr != "" {
		srv := ops.New(ops.Config{Metrics: reg, Tracer: w.Tracer()})
		addr, err := srv.Start(o.opsAddr)
		if err != nil {
			return err
		}
		fmt.Printf("ops endpoint listening on http://%s\n", addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
	}

	fmt.Printf("worker %s: joining coordinator at %s\n", w.ID(), o.coordAddr)
	if err := w.Run(ctx); err != nil {
		return err
	}
	fmt.Printf("worker %s: done\n", w.ID())
	if o.metricsPath != "" {
		if err := writeWorkerMetrics(o.metricsPath, reg); err != nil {
			return err
		}
		fmt.Printf("metrics report written to %s\n", o.metricsPath)
	}
	return nil
}

func writeWorkerMetrics(path string, reg *metrics.Registry) error {
	f, err := atomicfile.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}
