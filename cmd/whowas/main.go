// Command whowas runs a WhoWas measurement campaign against a
// simulated IaaS cloud (EC2- or Azure-like; see DESIGN.md for the
// substitution rationale), then saves the round store for later
// querying with whowas-query.
//
// Usage:
//
//	whowas -cloud ec2 -scale 256 -out ec2.whowas
//	whowas -cloud azure -scale 64 -rounds 10 -cluster=false
//
// The campaign follows the paper's §6 schedule (a round every 3 days,
// then daily for the final month) unless -rounds caps the round count.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"whowas/internal/carto"
	"whowas/internal/cloudsim"
	"whowas/internal/cluster"
	"whowas/internal/core"
	"whowas/internal/ipaddr"
)

func main() {
	var (
		cloudName   = flag.String("cloud", "ec2", "cloud profile: ec2 or azure")
		scale       = flag.Int("scale", 256, "address-space scale divisor (larger = smaller cloud)")
		seed        = flag.Int64("seed", 1, "simulation seed")
		out         = flag.String("out", "", "write the collected store (gob) to this path")
		maxRounds   = flag.Int("rounds", 0, "cap the number of rounds (0 = full §6 schedule)")
		doCluster   = flag.Bool("cluster", true, "run the §5 clustering after collection")
		doCarto     = flag.Bool("carto", true, "run the §5 VPC cartography (EC2 only)")
		blacklist   = flag.String("exclude", "", "comma-separated IPs to exclude from probing (opt-outs)")
		quiet       = flag.Bool("q", false, "suppress per-round progress")
		metricsPath = flag.String("metrics", "", "write the campaign metrics report (round reports + registry snapshot) as JSON to this path")
	)
	flag.Parse()

	if err := run(*cloudName, *scale, *seed, *out, *maxRounds, *doCluster, *doCarto, *blacklist, *quiet, *metricsPath); err != nil {
		fmt.Fprintf(os.Stderr, "whowas: %v\n", err)
		os.Exit(1)
	}
}

func run(cloudName string, scale int, seed int64, out string, maxRounds int, doCluster, doCarto bool, exclude string, quiet bool, metricsPath string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cfg cloudsim.Config
	switch cloudName {
	case "ec2":
		cfg = cloudsim.DefaultEC2Config(scale, seed)
	case "azure":
		cfg = cloudsim.DefaultAzureConfig(scale, seed)
	default:
		return fmt.Errorf("unknown cloud %q (want ec2 or azure)", cloudName)
	}

	fmt.Printf("building %s-like cloud (%d probed IPs, %d-day campaign)...\n",
		cloudName, totalIPs(cfg), cfg.Days)
	p, err := core.NewPlatform(cfg)
	if err != nil {
		return err
	}

	camp := core.FastCampaign()
	if maxRounds > 0 {
		days := core.DefaultRoundSchedule(cfg.Days)
		if maxRounds < len(days) {
			days = days[:maxRounds]
		}
		camp.RoundDays = days
	}
	if exclude != "" {
		set := ipaddr.NewSet()
		for _, s := range splitComma(exclude) {
			a, err := ipaddr.ParseAddr(s)
			if err != nil {
				return fmt.Errorf("bad -exclude entry: %w", err)
			}
			set.Add(a)
		}
		camp.Blacklist = set
		fmt.Printf("excluding %d opted-out IPs\n", set.Len())
	}
	if !quiet {
		camp.Observer = func(r core.RoundReport) {
			fmt.Printf("  round %2d (day %2d): %d/%d responsive, %d fetched, %d errors, scan %s\n",
				r.Round, r.Day, r.Responsive, r.Probed, r.Fetched, r.FetchErrors, r.Scan.Round(time.Millisecond))
		}
	}

	if err := p.RunCampaign(ctx, camp); err != nil {
		return err
	}
	fmt.Printf("campaign complete: %d rounds collected\n", p.Store.NumRounds())

	if doCarto && p.IsEC2Like() {
		fmt.Println("running VPC cartography sweep...")
		if err := p.RunCartography(ctx, carto.Config{Rate: 1e6}); err != nil {
			return err
		}
		fmt.Printf("cartography: %d VPC /22 prefixes\n", p.CartoMap.VPCPrefixCount())
	}
	if doCluster {
		fmt.Println("clustering <IP, round> records...")
		if err := p.RunClustering(cluster.Config{}); err != nil {
			return err
		}
		fmt.Printf("clusters: %d top-level, %d second-level, %d final (threshold %d)\n",
			p.Clusters.TopLevel, p.Clusters.SecondLevel, p.Clusters.Final, p.Clusters.Threshold)
	}

	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := p.Store.Save(f); err != nil {
			return err
		}
		fmt.Printf("store written to %s\n", out)
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := p.WriteMetricsJSON(f); err != nil {
			return err
		}
		fmt.Printf("metrics report written to %s\n", metricsPath)
	}
	return nil
}

func totalIPs(cfg cloudsim.Config) int {
	n := 0
	for _, r := range cfg.Regions {
		n += r.Prefixes22 * 1024
	}
	return n
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
