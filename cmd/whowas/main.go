// Command whowas runs a WhoWas measurement campaign against a
// simulated IaaS cloud (EC2- or Azure-like; see DESIGN.md for the
// substitution rationale), then saves the round store for later
// querying with whowas-query.
//
// Usage:
//
//	whowas -cloud ec2 -scale 256 -out ec2.whowas
//	whowas -cloud azure -scale 64 -rounds 10 -cluster=false
//	whowas -faults scenarios/chaos.json -retries 3 -round-timeout 30s
//	whowas -cloud-addr 127.0.0.1:8390 -rounds 3
//
// With -cloud-addr the campaign runs over the wire against a live
// whowas-cloudd daemon instead of an in-process simulator; a seeded
// campaign produces a byte-identical store digest either way.
//
// The campaign follows the paper's §6 schedule (a round every 3 days,
// then daily for the final month) unless -rounds caps the round count.
// -faults replays the campaign through the deterministic
// fault-injection layer (internal/faults); pair it with -retries and
// -round-timeout to exercise the pipeline's resilience, and -metrics
// to see the faults.* injection counters next to what was recovered.
//
// Live observability: -ops-addr serves /healthz, /metrics,
// /metrics/prom, /rounds, /trace/* and /debug/pprof/* while the
// campaign runs, and -trace-journal records every completed span as
// JSONL for whowas-query trace.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"whowas/internal/atomicfile"
	"whowas/internal/carto"
	"whowas/internal/cloudapi"
	"whowas/internal/cluster"
	"whowas/internal/core"
	"whowas/internal/faults"
	"whowas/internal/ipaddr"
	"whowas/internal/ops"
	"whowas/internal/store/colstore"
	"whowas/internal/trace"
)

// options collects every flag-driven knob of one CLI invocation.
type options struct {
	cloudName    string
	cloudAddr    string
	scale        int
	seed         int64
	out          string
	storeDir     string
	maxRounds    int
	doCluster    bool
	doCarto      bool
	exclude      string
	quiet        bool
	metricsPath  string
	faultsPath   string
	retries      int
	roundTimeout time.Duration
	opsAddr      string
	journalPath  string
	shards       int
	worker       bool
	coordAddr    string
	workerID     string
}

func main() {
	var o options
	flag.StringVar(&o.cloudName, "cloud", "ec2", "cloud profile: ec2 or azure")
	flag.StringVar(&o.cloudAddr, "cloud-addr", "", "measure a running whowas-cloudd at this control address instead of an in-process cloud (-cloud/-scale/-seed are then ignored)")
	flag.IntVar(&o.scale, "scale", 256, "address-space scale divisor (larger = smaller cloud)")
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed")
	flag.StringVar(&o.out, "out", "", "write the collected store (gob) to this path")
	flag.StringVar(&o.storeDir, "store-dir", "", "back the store with the on-disk columnar engine at this directory (one segment file per round; bounds memory on large campaigns)")
	flag.IntVar(&o.maxRounds, "rounds", 0, "cap the number of rounds (0 = full §6 schedule)")
	flag.BoolVar(&o.doCluster, "cluster", true, "run the §5 clustering after collection")
	flag.BoolVar(&o.doCarto, "carto", true, "run the §5 VPC cartography (EC2 only)")
	flag.StringVar(&o.exclude, "exclude", "", "comma-separated IPs to exclude from probing (opt-outs)")
	flag.BoolVar(&o.quiet, "q", false, "suppress per-round progress")
	flag.StringVar(&o.metricsPath, "metrics", "", "write the campaign metrics report (round reports + registry snapshot) as JSON to this path")
	flag.StringVar(&o.faultsPath, "faults", "", "inject faults from this JSON scenario (see internal/faults)")
	flag.IntVar(&o.retries, "retries", 0, "probe/fetch attempts per target (0 = single attempt)")
	flag.DurationVar(&o.roundTimeout, "round-timeout", 0, "per-round deadline; an exceeded round finalizes degraded with partial records (0 = none)")
	flag.StringVar(&o.opsAddr, "ops-addr", "", "serve the live ops endpoint (/healthz, /metrics, /trace/*, pprof) on this address")
	flag.StringVar(&o.journalPath, "trace-journal", "", "append completed spans as JSONL to this path (crash-safe; read with whowas-query trace)")
	flag.IntVar(&o.shards, "pipeline-shards", 0, "round pipeline region lanes (0 = one per region, 1 = unsharded; store contents are identical either way)")
	flag.BoolVar(&o.worker, "worker", false, "run as a distributed-campaign worker: lease a probe-budget slice from a whowas-coordinator and execute assigned shards until the campaign is done")
	flag.StringVar(&o.coordAddr, "coordinator-addr", "", "coordinator protocol address (required with -worker)")
	flag.StringVar(&o.workerID, "worker-id", "", "worker identity for leasing and shard ownership (default: PID-derived; must be unique per fleet)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "whowas: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if o.worker {
		return runWorker(ctx, o)
	}

	var p *core.Platform
	if o.cloudAddr != "" {
		client, err := cloudapi.Dial(ctx, o.cloudAddr)
		if err != nil {
			return err
		}
		defer client.Close()
		info := client.Info()
		fmt.Printf("measuring cloud %q at %s (%d probed IPs, %d-day campaign, %d data listeners)...\n",
			info.Name, o.cloudAddr, client.Ranges().Total(), info.Days, len(info.DataAddrs))
		p, err = core.NewPlatformCloud(client)
		if err != nil {
			return err
		}
	} else {
		var cfg cloudapi.SimConfig
		switch o.cloudName {
		case "ec2":
			cfg = cloudapi.DefaultEC2Config(o.scale, o.seed)
		case "azure":
			cfg = cloudapi.DefaultAzureConfig(o.scale, o.seed)
		default:
			return fmt.Errorf("unknown cloud %q (want ec2 or azure)", o.cloudName)
		}
		fmt.Printf("building %s-like cloud (%d probed IPs, %d-day campaign)...\n",
			o.cloudName, totalIPs(cfg), cfg.Days)
		var err error
		p, err = core.NewPlatform(cfg)
		if err != nil {
			return err
		}
	}

	if o.storeDir != "" {
		backend, err := colstore.Open(o.storeDir, colstore.Options{CloudName: p.Store.CloudName})
		if err != nil {
			return err
		}
		if err := p.UseStoreBackend(backend); err != nil {
			return err
		}
		fmt.Printf("columnar store at %s\n", o.storeDir)
	}
	defer func() {
		if err := p.Store.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "whowas: closing store: %v\n", err)
		}
	}()

	if o.journalPath != "" || o.opsAddr != "" {
		tcfg := trace.Config{}
		if o.journalPath != "" {
			j, err := trace.CreateJournal(o.journalPath)
			if err != nil {
				return err
			}
			tcfg.Journal = j
		}
		p.Tracer = trace.New(tcfg)
		defer func() {
			if err := p.Tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "whowas: closing trace journal: %v\n", err)
			} else if o.journalPath != "" {
				fmt.Printf("trace journal written to %s\n", o.journalPath)
			}
		}()
	}
	if o.opsAddr != "" {
		srv := ops.New(ops.Config{Metrics: p.Metrics, Tracer: p.Tracer, Rounds: p.RoundReports})
		addr, err := srv.Start(o.opsAddr)
		if err != nil {
			return err
		}
		fmt.Printf("ops endpoint listening on http://%s\n", addr)
		defer func() {
			sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			_ = srv.Shutdown(sctx)
		}()
	}

	camp := core.FastCampaign()
	if o.maxRounds > 0 {
		days := core.DefaultRoundSchedule(p.Cloud.Days())
		if o.maxRounds < len(days) {
			days = days[:o.maxRounds]
		}
		camp.RoundDays = days
	}
	if o.faultsPath != "" {
		sc, err := faults.LoadFile(o.faultsPath)
		if err != nil {
			return err
		}
		camp.Faults = sc
		fmt.Printf("injecting faults from %s (scenario %q, seed %d)\n", o.faultsPath, sc.Name, sc.Seed)
	}
	if o.retries > 0 {
		camp.Scanner.Attempts = o.retries
		camp.Fetcher.Attempts = o.retries
	}
	camp.RoundTimeout = o.roundTimeout
	camp.PipelineShards = o.shards
	if o.exclude != "" {
		set := ipaddr.NewSet()
		for _, s := range splitComma(o.exclude) {
			a, err := ipaddr.ParseAddr(s)
			if err != nil {
				return fmt.Errorf("bad -exclude entry: %w", err)
			}
			set.Add(a)
		}
		camp.Blacklist = set
		fmt.Printf("excluding %d opted-out IPs\n", set.Len())
	}
	if !o.quiet {
		camp.Observer = func(r core.RoundReport) {
			line := fmt.Sprintf("  round %2d (day %2d): %d/%d responsive, %d fetched, %d errors, scan %s",
				r.Round, r.Day, r.Responsive, r.Probed, r.Fetched, r.FetchErrors, r.Scan.Round(time.Millisecond))
			if r.Retries > 0 {
				line += fmt.Sprintf(", %d retries", r.Retries)
			}
			if r.Degraded {
				line += " [degraded]"
			}
			fmt.Println(line)
		}
	}

	if err := p.RunCampaign(ctx, camp); err != nil {
		return err
	}
	fmt.Printf("campaign complete: %d rounds collected\n", p.Store.NumRounds())
	digest, err := p.Store.Digest()
	if err != nil {
		return err
	}
	// The digest is the campaign's identity: the cloudd CI gate diffs
	// it between in-process and wire runs of the same seed.
	fmt.Printf("store digest: %s\n", digest)

	if o.doCarto && p.IsEC2Like() {
		fmt.Println("running VPC cartography sweep...")
		if err := p.RunCartography(ctx, carto.Config{Rate: 1e6}); err != nil {
			return err
		}
		fmt.Printf("cartography: %d VPC /22 prefixes\n", p.CartoMap.VPCPrefixCount())
	}
	if o.doCluster {
		fmt.Println("clustering <IP, round> records...")
		if err := p.RunClustering(cluster.Config{}); err != nil {
			return err
		}
		fmt.Printf("clusters: %d top-level, %d second-level, %d final (threshold %d)\n",
			p.Clusters.TopLevel, p.Clusters.SecondLevel, p.Clusters.Final, p.Clusters.Threshold)
	}

	if o.out != "" {
		f, err := atomicfile.Create(o.out)
		if err != nil {
			return err
		}
		if err := p.Store.Save(f); err != nil {
			f.Abort()
			return err
		}
		if err := f.Commit(); err != nil {
			return err
		}
		fmt.Printf("store written to %s\n", o.out)
	}
	if o.metricsPath != "" {
		if err := p.WriteMetricsFile(o.metricsPath); err != nil {
			return err
		}
		fmt.Printf("metrics report written to %s\n", o.metricsPath)
	}
	return nil
}

func totalIPs(cfg cloudapi.SimConfig) int {
	n := 0
	for _, r := range cfg.Regions {
		n += r.Prefixes22 * 1024
	}
	return n
}

func splitComma(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}
