// Command whowas-coordinator runs the distributed campaign's control
// plane: it owns the round schedule, assigns region shards to a fleet
// of `whowas -worker` processes, leases each worker a slice of the
// global §7 probe-rate budget (a lease that stops being renewed
// expires, its tokens return to the pool, and its shards are re-queued
// for the survivors), and merges the submitted shards into the one
// round store — producing a store digest byte-identical to a
// single-process `whowas` run of the same cloud and schedule, for any
// worker count.
//
// Usage:
//
//	whowas-cloudd -scale 4096 -seed 7 &
//	whowas-coordinator -cloud-addr 127.0.0.1:8390 -rounds 3 -out ec2.whowas &
//	whowas -worker -coordinator-addr 127.0.0.1:8395 -worker-id w1 &
//	whowas -worker -coordinator-addr 127.0.0.1:8395 -worker-id w2
//
// The coordinator's address also serves the standard ops surface
// (/healthz, /metrics, /rounds, pprof) plus /coord/status and
// /coord/fleet for fleet introspection: workers piggyback metrics
// snapshots and sampled spans on their heartbeats and submissions, and
// the coordinator aggregates them into a live fleet view
// (`whowas-query fleet` renders it), a worker-labeled Prometheus
// exposition on /metrics/prom, and — with -trace-journal — one merged
// span journal that reconstructs the distributed campaign
// (`whowas-query trace` reads it).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"whowas/internal/atomicfile"
	"whowas/internal/coord"
	"whowas/internal/core"
	"whowas/internal/faults"
	"whowas/internal/metrics"
	"whowas/internal/trace"
)

type options struct {
	cloudAddr    string
	addr         string
	maxRounds    int
	shards       int
	maxWorkers   int
	rate         float64
	leaseTTL     time.Duration
	roundTimeout time.Duration
	retries      int
	keepBodies   bool
	faultsPath   string
	out          string
	storeDir     string
	metricsPath  string
	journalPath  string
	drainWait    time.Duration
	quiet        bool
}

func main() {
	var o options
	flag.StringVar(&o.cloudAddr, "cloud-addr", "", "control address of the shared whowas-cloudd daemon (required)")
	flag.StringVar(&o.addr, "addr", "127.0.0.1:8395", "address to serve the coordinator protocol and ops surface on (use :0 for an ephemeral port)")
	flag.IntVar(&o.maxRounds, "rounds", 0, "cap the number of rounds (0 = full §6 schedule)")
	flag.IntVar(&o.shards, "shards", 0, "region shards per round (0 = one per region; digests are identical for any value)")
	flag.IntVar(&o.maxWorkers, "max-workers", coord.DefaultMaxWorkers, "fleet size bound; the global probe budget is leased in equal slices of this many")
	flag.Float64Var(&o.rate, "rate", 0, "global probe budget shared by the whole fleet, probes/sec (0 = simulation speed)")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", coord.DefaultLeaseTTL, "worker lease lifetime; a worker silent this long is declared dead and its shards re-assigned")
	flag.DurationVar(&o.roundTimeout, "round-timeout", 0, "per-round deadline; a round missing shards at the deadline finalizes degraded (0 = none)")
	flag.IntVar(&o.retries, "retries", 0, "probe/fetch attempts per target, forwarded to workers (0 = single attempt)")
	flag.BoolVar(&o.keepBodies, "keep-bodies", false, "retain raw page bodies in the store (and on the wire)")
	flag.StringVar(&o.faultsPath, "faults", "", "inject faults from this JSON scenario on every worker")
	flag.StringVar(&o.out, "out", "", "write the merged store (gob) to this path")
	flag.StringVar(&o.storeDir, "store-dir", "", "back the merged store with the on-disk columnar engine at this directory (one segment file per round)")
	flag.StringVar(&o.metricsPath, "metrics", "", "write the coordinator metrics snapshot as JSON to this path")
	flag.StringVar(&o.journalPath, "trace-journal", "", "append the fleet's merged spans (worker spans stamped with worker identity under each round) as JSONL to this path")
	flag.DurationVar(&o.drainWait, "drain-wait", 10*time.Second, "how long to wait after the last round for workers to be told the campaign is done")
	flag.BoolVar(&o.quiet, "q", false, "suppress per-round progress")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "whowas-coordinator: %v\n", err)
		os.Exit(1)
	}
}

func run(o options) error {
	if o.cloudAddr == "" {
		return fmt.Errorf("-cloud-addr is required (start whowas-cloudd first)")
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := coord.Config{
		CloudAddr:    o.cloudAddr,
		MaxRounds:    o.maxRounds,
		Shards:       o.shards,
		MaxWorkers:   o.maxWorkers,
		Rate:         o.rate,
		LeaseTTL:     o.leaseTTL,
		RoundTimeout: o.roundTimeout,
		Attempts:     o.retries,
		KeepBodies:   o.keepBodies,
		StoreDir:     o.storeDir,
		Metrics:      metrics.NewRegistry(),
	}
	if o.storeDir != "" {
		fmt.Printf("columnar store at %s\n", o.storeDir)
	}
	if o.journalPath != "" {
		j, err := trace.CreateJournal(o.journalPath)
		if err != nil {
			return err
		}
		cfg.Tracer = trace.New(trace.Config{Journal: j})
		defer func() {
			if err := cfg.Tracer.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "whowas-coordinator: closing trace journal: %v\n", err)
			} else {
				fmt.Printf("trace journal written to %s\n", o.journalPath)
			}
		}()
	}
	if o.faultsPath != "" {
		sc, err := faults.LoadFile(o.faultsPath)
		if err != nil {
			return err
		}
		cfg.Faults = sc
		fmt.Printf("injecting faults from %s (scenario %q, seed %d)\n", o.faultsPath, sc.Name, sc.Seed)
	}
	if !o.quiet {
		cfg.Observer = func(r core.RoundReport) {
			line := fmt.Sprintf("  round %2d (day %2d): %d/%d responsive, %d fetched, %d errors",
				r.Round, r.Day, r.Responsive, r.Probed, r.Fetched, r.FetchErrors)
			if r.Retries > 0 {
				line += fmt.Sprintf(", %d retries", r.Retries)
			}
			if r.Degraded {
				line += " [degraded]"
			}
			fmt.Println(line)
		}
	}

	srv, err := coord.NewServer(ctx, cfg)
	if err != nil {
		return err
	}
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
	}()

	addr, err := srv.Start(o.addr)
	if err != nil {
		return err
	}
	fmt.Printf("coordinator listening on http://%s (cloud %s, %d rounds, %d shards/round, budget %s)\n",
		addr, o.cloudAddr, srv.ScheduledRounds(), srv.NumShards(), budgetLabel(o.rate))

	if err := srv.Run(ctx); err != nil {
		return err
	}
	dctx, cancel := context.WithTimeout(ctx, o.drainWait)
	defer cancel()
	if err := srv.DrainWorkers(dctx); err != nil {
		fmt.Fprintf(os.Stderr, "whowas-coordinator: draining workers: %v\n", err)
	}

	st := srv.Store()
	fmt.Printf("campaign complete: %d rounds collected\n", st.NumRounds())
	digest, err := st.Digest()
	if err != nil {
		return err
	}
	// The digest is the campaign's identity: the coord CI gate diffs it
	// against a single-process run of the same seed.
	fmt.Printf("store digest: %s\n", digest)

	if o.out != "" {
		f, err := atomicfile.Create(o.out)
		if err != nil {
			return err
		}
		if err := st.Save(f); err != nil {
			f.Abort()
			return err
		}
		if err := f.Commit(); err != nil {
			return err
		}
		fmt.Printf("store written to %s\n", o.out)
	}
	if o.metricsPath != "" {
		if err := writeMetrics(o.metricsPath, cfg.Metrics); err != nil {
			return err
		}
		fmt.Printf("metrics report written to %s\n", o.metricsPath)
	}
	return nil
}

func writeMetrics(path string, reg *metrics.Registry) error {
	f, err := atomicfile.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Abort()
		return err
	}
	return f.Commit()
}

func budgetLabel(rate float64) string {
	if rate <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%.0f pps", rate)
}
