// Command whowas-cloudd serves a simulated IaaS cloud over real TCP:
// the daemon side of the cloudapi boundary. It hosts an in-process
// cloud (the same cloudsim/netsim composition the whowas CLI builds)
// behind two listening surfaces:
//
//   - a data-plane listener fleet tunneling scanner and fetcher dials
//     onto the simulated network (the WHOWAS1 preamble protocol);
//   - a JSON-over-HTTP control plane: /healthz, /cloud/info,
//     /cloud/day, /truth/snapshot, /dns/public and /faults, plus the
//     standard observability surface (/metrics, /metrics/prom,
//     /debug/pprof/*) with dial, preamble and session counters.
//
// Usage:
//
//	whowas-cloudd -cloud ec2 -scale 4096 -seed 7
//	whowas -cloud-addr 127.0.0.1:8390 -rounds 3     # in another shell
//	whowas-query cloud -addr 127.0.0.1:8390          # health + census
//
// A campaign against the daemon produces a byte-identical store
// digest to the same campaign run in-process; CI enforces this.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"whowas/internal/cloudapi"
	"whowas/internal/metrics"
)

func main() {
	var (
		cloudName = flag.String("cloud", "ec2", "cloud profile: ec2 or azure")
		scale     = flag.Int("scale", 4096, "address-space scale divisor (larger = smaller cloud)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		addr      = flag.String("addr", "127.0.0.1:8390", "control-plane listen address")
		dataN     = flag.Int("data-listeners", 4, "data-plane listener fleet size")
		dataBase  = flag.Int("data-base-port", 0, "first data-plane port (0 = ephemeral; listener i binds base+i)")
	)
	flag.Parse()
	if err := run(*cloudName, *scale, *seed, *addr, *dataN, *dataBase); err != nil {
		fmt.Fprintf(os.Stderr, "whowas-cloudd: %v\n", err)
		os.Exit(1)
	}
}

func run(cloudName string, scale int, seed int64, addr string, dataN, dataBase int) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var cfg cloudapi.SimConfig
	switch cloudName {
	case "ec2":
		cfg = cloudapi.DefaultEC2Config(scale, seed)
	case "azure":
		cfg = cloudapi.DefaultAzureConfig(scale, seed)
	default:
		return fmt.Errorf("unknown cloud %q (want ec2 or azure)", cloudName)
	}

	cloud, err := cloudapi.NewInProcess(cfg)
	if err != nil {
		return err
	}
	srv := cloudapi.NewServer(cloud, cloudapi.ServerConfig{
		DataListeners: dataN,
		DataBasePort:  dataBase,
		Metrics:       metrics.NewRegistry(),
	})
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	fmt.Printf("whowas-cloudd: cloud %q (%d probed IPs, %d days, seed %d)\n",
		cfg.Name, cloud.Ranges().Total(), cfg.Days, cfg.Seed)
	fmt.Printf("whowas-cloudd: control plane on http://%s\n", bound)
	fmt.Printf("whowas-cloudd: data plane on %s\n", strings.Join(srv.DataAddrs(), " "))

	<-ctx.Done()
	fmt.Println("whowas-cloudd: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}
