#!/bin/sh
# coord_gate.sh — the distributed-campaign acceptance gate (the CI
# coord job). Builds the daemon and the CLIs, starts whowas-cloudd,
# measures the cloud once single-process, then with whowas-coordinator
# fleets of 1, 2 and 4 workers — the 4-worker run SIGKILLs one worker
# mid-campaign — and hard-fails unless every store digest is
# byte-identical to the single-process run.
#
# Each fleet run also drives the observability surface while the
# campaign is live: `whowas-query fleet` must show worker rows, the
# Prometheus exposition must carry worker labels, the status history
# must record the SIGKILLed worker's expired lease, and the merged
# -trace-journal must attribute shard spans to worker identities.
set -eu

ADDR="${COORD_CLOUDD_ADDR:-127.0.0.1:8396}"
CADDR="${COORD_ADDR:-127.0.0.1:8397}"
SCALE="${COORD_SCALE:-4096}"
SEED="${COORD_SEED:-7}"
ROUNDS="${COORD_ROUNDS:-3}"
TTL="${COORD_LEASE_TTL:-1s}"

# Binaries and logs live in a scratch dir so the gate never litters
# the repository checkout.
WORK=$(mktemp -d "${TMPDIR:-/tmp}/coord_gate.XXXXXX")

echo "== building binaries"
go build -o "$WORK/bin/whowas" ./cmd/whowas
go build -o "$WORK/bin/whowas-cloudd" ./cmd/whowas-cloudd
go build -o "$WORK/bin/whowas-coordinator" ./cmd/whowas-coordinator
go build -o "$WORK/bin/whowas-query" ./cmd/whowas-query

PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== starting whowas-cloudd on $ADDR (scale $SCALE, seed $SEED)"
"$WORK"/bin/whowas-cloudd -cloud ec2 -scale "$SCALE" -seed "$SEED" \
    -addr "$ADDR" -data-listeners 4 &
PIDS="$PIDS $!"

echo "== waiting for daemon health"
i=0
until "$WORK"/bin/whowas-query cloud -addr "$ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "coord_gate: cloudd never became healthy" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== single-process campaign (the reference digest)"
"$WORK"/bin/whowas -cloud-addr "$ADDR" -rounds "$ROUNDS" \
    -cluster=false -carto=false -q | tee "$WORK"/single.out
BASE=$(sed -n 's/^store digest: //p' "$WORK"/single.out)
if [ -z "$BASE" ]; then
    echo "coord_gate: missing store digest in single-process output" >&2
    exit 1
fi

# poll_fleet PATTERN — one-shot the live dashboard against the running
# coordinator until it shows PATTERN (worker rows and history events
# appear as heartbeats and submissions arrive).
poll_fleet() {
    pat="$1"
    i=0
    until "$WORK"/bin/whowas-query fleet -history 64 "$CADDR" 2>/dev/null \
            | grep -q "$pat"; do
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "coord_gate: fleet dashboard never showed '$pat'" >&2
            "$WORK"/bin/whowas-query fleet -history 64 "$CADDR" >&2 || true
            exit 1
        fi
        sleep 0.2
    done
    echo "== fleet dashboard shows '$pat'"
}

# run_fleet WORKERS KILL_ONE — one distributed campaign; prints the
# coordinator's digest into the scratch dir's coord.out.
run_fleet() {
    workers="$1"
    kill_one="$2"
    echo "== coordinator campaign: $workers worker(s), kill_one=$kill_one"
    : >"$WORK"/coord.out
    JOURNAL="$WORK/journal-$workers-$kill_one.jsonl"
    "$WORK"/bin/whowas-coordinator -cloud-addr "$ADDR" -addr "$CADDR" \
        -rounds "$ROUNDS" -lease-ttl "$TTL" -q \
        -trace-journal "$JOURNAL" >"$WORK"/coord.out 2>&1 &
    COORD=$!
    PIDS="$PIDS $COORD"
    i=0
    until grep -q "coordinator listening" "$WORK"/coord.out; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "coord_gate: coordinator never started" >&2
            cat "$WORK"/coord.out >&2
            exit 1
        fi
        sleep 0.2
    done
    WPIDS=""
    i=0
    while [ "$i" -lt "$workers" ]; do
        "$WORK"/bin/whowas -worker -coordinator-addr "$CADDR" \
            -worker-id "gate-w$i" >"$WORK/worker$i.out" 2>&1 &
        WPIDS="$WPIDS $!"
        PIDS="$PIDS $!"
        i=$((i + 1))
    done
    # The live dashboard must show a labeled worker row once the
    # first heartbeat or shard submission lands, and the Prometheus
    # exposition must carry the same worker label.
    poll_fleet "gate-w"
    i=0
    until "$WORK"/bin/whowas-query fleet -prom "$CADDR" 2>/dev/null \
            | grep -q 'worker="gate-w'; do
        i=$((i + 1))
        if [ "$i" -ge 150 ]; then
            echo "coord_gate: /metrics/prom never showed a worker label" >&2
            exit 1
        fi
        sleep 0.2
    done
    echo "== /metrics/prom carries worker labels"
    if [ "$kill_one" = 1 ]; then
        # Give the victim time to lease a budget slice and start a
        # shard, then kill it without ceremony: no submit, no goodbye.
        # Lease expiry must hand its shard to the survivors.
        sleep 2
        VICTIM=$(echo "$WPIDS" | awk '{print $1}')
        kill -9 "$VICTIM" 2>/dev/null || true
        echo "== SIGKILLed worker pid $VICTIM mid-campaign"
        # The death must surface in the status history while the
        # campaign is still running: an expired lease, its shards
        # re-queued for the survivors.
        poll_fleet "lease_expired"
    fi
    if ! wait "$COORD"; then
        echo "coord_gate: coordinator failed" >&2
        cat "$WORK"/coord.out >&2
        exit 1
    fi
    for pid in $WPIDS; do
        wait "$pid" 2>/dev/null || true
    done
    cat "$WORK"/coord.out
    DIGEST=$(sed -n 's/^store digest: //p' "$WORK"/coord.out)
    if [ -z "$DIGEST" ]; then
        echo "coord_gate: missing store digest in coordinator output" >&2
        exit 1
    fi
    if [ "$DIGEST" != "$BASE" ]; then
        echo "coord_gate: DIGEST MISMATCH ($workers workers, kill_one=$kill_one): fleet=$DIGEST single=$BASE" >&2
        exit 1
    fi
    # The merged journal must reconstruct the campaign with shard
    # spans attributed to the workers that ran them.
    if ! "$WORK"/bin/whowas-query trace -journal "$JOURNAL" -slowest 8 \
            | grep -q "worker=gate-w"; then
        echo "coord_gate: journal $JOURNAL has no worker-attributed spans" >&2
        "$WORK"/bin/whowas-query trace -journal "$JOURNAL" -slowest 8 >&2 || true
        exit 1
    fi
    echo "== journal attributes shard spans to workers"
}

run_fleet 1 0
run_fleet 2 0
run_fleet 4 1

echo "== digest identity holds across 1/2/4-worker fleets (+worker kill): $BASE"
