#!/bin/sh
# store_gate.sh — the storage-engine acceptance gate (the CI store
# job). The store's digest is backend-independent by contract; this
# gate holds the whole stack to it:
#
#   - the same seeded campaign runs with the in-memory backend and
#     with the columnar backend (-store-dir) at 1, 2 and 4 pipeline
#     shards: every run must print the same collection digest, every
#     -out gob (written after cartography + clustering, so the
#     columnar Rewrite path is exercised too) must be byte-identical,
#     and every segment directory must digest identically when
#     reopened cold — proving the analysis write-backs reached the
#     disk, not just the backend's round cache;
#   - the gob is converted to a segment directory with whowas-query
#     -to-dir, and the directory must digest identically to the file;
#   - a 2-worker distributed campaign (whowas-cloudd +
#     whowas-coordinator -store-dir) must reproduce its single-process
#     reference digest from the columnar backend.
set -eu

cd "$(dirname "$0")/.."

SCALE="${STORE_SCALE:-4096}"
ROUNDS="${STORE_ROUNDS:-3}"
SEED="${STORE_SEED:-7}"
ADDR="${STORE_CLOUDD_ADDR:-127.0.0.1:8398}"
CADDR="${STORE_COORD_ADDR:-127.0.0.1:8399}"

WORK=$(mktemp -d "${TMPDIR:-/tmp}/store_gate.XXXXXX")
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building binaries"
go build -o "$WORK/bin/whowas" ./cmd/whowas
go build -o "$WORK/bin/whowas-cloudd" ./cmd/whowas-cloudd
go build -o "$WORK/bin/whowas-coordinator" ./cmd/whowas-coordinator
go build -o "$WORK/bin/whowas-query" ./cmd/whowas-query

# digest_of FILE — pull the (collection) store digest out of a run log.
digest_of() {
    sed -n 's/^store digest: //p' "$1" | head -1
}

echo "== in-memory reference campaign (scale $SCALE, $ROUNDS rounds)"
"$WORK"/bin/whowas -scale "$SCALE" -seed "$SEED" -rounds "$ROUNDS" -q \
    -out "$WORK/mem.whowas" >"$WORK/mem.out"
BASE=$(digest_of "$WORK/mem.out")
if [ -z "$BASE" ]; then
    echo "store_gate: missing store digest in reference output" >&2
    exit 1
fi
echo "   digest $BASE"
# The post-analysis digest (what -out holds after cartography +
# clustering): the campaign's segment directory must match this one,
# not the collection digest, once reopened cold.
"$WORK"/bin/whowas-query -store "$WORK/mem.whowas" -digest >"$WORK/filedigest.out"
FILED=$(digest_of "$WORK/filedigest.out")
if [ -z "$FILED" ]; then
    echo "store_gate: missing post-analysis digest for the reference gob" >&2
    exit 1
fi

for shards in 1 2 4; do
    echo "== columnar campaign, $shards pipeline shard(s)"
    "$WORK"/bin/whowas -scale "$SCALE" -seed "$SEED" -rounds "$ROUNDS" -q \
        -pipeline-shards "$shards" -store-dir "$WORK/col$shards" \
        -out "$WORK/col$shards.whowas" >"$WORK/col$shards.out"
    DIGEST=$(digest_of "$WORK/col$shards.out")
    if [ "$DIGEST" != "$BASE" ]; then
        echo "store_gate: DIGEST MISMATCH (columnar, $shards shards): $DIGEST != $BASE" >&2
        exit 1
    fi
    if ! cmp -s "$WORK/col$shards.whowas" "$WORK/mem.whowas"; then
        echo "store_gate: -out gob from the columnar backend ($shards shards) is not byte-identical to the in-memory one" >&2
        exit 1
    fi
    # Reopen the campaign's own segment directory cold: the
    # post-analysis digest must survive without the writing process's
    # round cache.
    "$WORK"/bin/whowas-query -store-dir "$WORK/col$shards" -digest >"$WORK/col$shards.dir.out"
    DIRD=$(digest_of "$WORK/col$shards.dir.out")
    if [ "$DIRD" != "$FILED" ]; then
        echo "store_gate: DIGEST MISMATCH (reopened segment dir, $shards shards): $DIRD != $FILED (stale on-disk rounds?)" >&2
        exit 1
    fi
done
echo "== columnar digests and -out gobs identical across 1/2/4 shards"

echo "== gob -> columnar conversion identity"
"$WORK"/bin/whowas-query -store "$WORK/mem.whowas" -to-dir "$WORK/conv" >/dev/null
"$WORK"/bin/whowas-query -store-dir "$WORK/conv" -digest >"$WORK/convdigest.out"
CONVD=$(digest_of "$WORK/convdigest.out")
if [ -z "$FILED" ] || [ "$FILED" != "$CONVD" ]; then
    echo "store_gate: conversion digest mismatch: file=$FILED converted=$CONVD" >&2
    exit 1
fi
echo "   digest $CONVD"

echo "== starting whowas-cloudd on $ADDR for the fleet run"
"$WORK"/bin/whowas-cloudd -cloud ec2 -scale "$SCALE" -seed "$SEED" \
    -addr "$ADDR" -data-listeners 4 &
PIDS="$PIDS $!"
i=0
until "$WORK"/bin/whowas-query cloud -addr "$ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "store_gate: cloudd never became healthy" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== single-process wire campaign (the fleet reference)"
"$WORK"/bin/whowas -cloud-addr "$ADDR" -rounds "$ROUNDS" \
    -cluster=false -carto=false -q >"$WORK/wire.out"
WIREBASE=$(digest_of "$WORK/wire.out")

echo "== 2-worker fleet on the columnar backend"
"$WORK"/bin/whowas-coordinator -cloud-addr "$ADDR" -addr "$CADDR" \
    -rounds "$ROUNDS" -store-dir "$WORK/fleet" -q >"$WORK/coord.out" 2>&1 &
COORD=$!
PIDS="$PIDS $COORD"
i=0
until grep -q "coordinator listening" "$WORK/coord.out"; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "store_gate: coordinator never started" >&2
        cat "$WORK/coord.out" >&2
        exit 1
    fi
    sleep 0.2
done
for w in 0 1; do
    "$WORK"/bin/whowas -worker -coordinator-addr "$CADDR" \
        -worker-id "store-w$w" >"$WORK/worker$w.out" 2>&1 &
    PIDS="$PIDS $!"
done
if ! wait "$COORD"; then
    echo "store_gate: coordinator failed" >&2
    cat "$WORK/coord.out" >&2
    exit 1
fi
FLEETD=$(digest_of "$WORK/coord.out")
if [ -z "$FLEETD" ] || [ "$FLEETD" != "$WIREBASE" ]; then
    echo "store_gate: DIGEST MISMATCH (2-worker fleet on colstore): fleet=$FLEETD single=$WIREBASE" >&2
    exit 1
fi
SEGS=$(ls "$WORK/fleet" | grep -c '\.seg$' || true)
if [ "$SEGS" -ne "$ROUNDS" ]; then
    echo "store_gate: fleet segment directory holds $SEGS segments, want $ROUNDS" >&2
    exit 1
fi
echo "== fleet digest identical from the columnar backend: $FLEETD"

echo "store_gate: PASS"
