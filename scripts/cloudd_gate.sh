#!/bin/sh
# cloudd_gate.sh — the cloud-boundary acceptance gate (the CI cloudd
# job). Builds the daemon and the CLIs, starts whowas-cloudd, runs the
# same seeded campaign over the wire and in-process, and hard-fails
# unless the two store digests are byte-identical.
set -eu

ADDR="${CLOUDD_ADDR:-127.0.0.1:8390}"
SCALE="${CLOUDD_SCALE:-4096}"
SEED="${CLOUDD_SEED:-7}"
ROUNDS="${CLOUDD_ROUNDS:-3}"

echo "== building binaries"
go build -o bin/whowas ./cmd/whowas
go build -o bin/whowas-cloudd ./cmd/whowas-cloudd
go build -o bin/whowas-query ./cmd/whowas-query

echo "== starting whowas-cloudd on $ADDR (scale $SCALE, seed $SEED)"
bin/whowas-cloudd -cloud ec2 -scale "$SCALE" -seed "$SEED" \
    -addr "$ADDR" -data-listeners 4 &
CLOUDD=$!
trap 'kill "$CLOUDD" 2>/dev/null || true' EXIT INT TERM

echo "== waiting for daemon health"
i=0
until bin/whowas-query cloud -addr "$ADDR" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "cloudd_gate: daemon never became healthy" >&2
        exit 1
    fi
    sleep 0.2
done
bin/whowas-query cloud -addr "$ADDR"

echo "== wire campaign (via $ADDR)"
bin/whowas -cloud-addr "$ADDR" -rounds "$ROUNDS" \
    -cluster=false -carto=false -q | tee wire.out

echo "== in-process campaign (same cloud, same seed)"
bin/whowas -cloud ec2 -scale "$SCALE" -seed "$SEED" -rounds "$ROUNDS" \
    -cluster=false -carto=false -q | tee local.out

WIRE=$(sed -n 's/^store digest: //p' wire.out)
LOCAL=$(sed -n 's/^store digest: //p' local.out)
if [ -z "$WIRE" ] || [ -z "$LOCAL" ]; then
    echo "cloudd_gate: missing store digest in campaign output" >&2
    exit 1
fi
if [ "$WIRE" != "$LOCAL" ]; then
    echo "cloudd_gate: DIGEST MISMATCH: wire=$WIRE local=$LOCAL" >&2
    exit 1
fi
echo "== digest identity holds: $WIRE"
