#!/bin/sh
# bench_gate.sh — hold fresh benchmark runs to the committed baselines:
# the sharded-pipeline smoke benchmark (BENCH_pipeline.json) and the
# store-engine benchmark (BENCH_store.json).
#
# Each gate is two-layered:
#   - exact: the fresh run's store digest(s) and record count must
#     equal the committed baseline's — and for the store gate the
#     on-disk byte counts too, since both encodings are deterministic
#     (any drift means the code changed what it produces, not how
#     fast);
#   - tolerant: throughput/latency must be within BENCH_TOLERANCE
#     (default 0.35, i.e. 35%) of the baseline's — wide because runner
#     hardware varies far more than code does.
#
# Regenerate the baselines intentionally with:
#   make pipeline-bench
#   make store-bench
#
# Environment:
#   BENCH_SCALE      scale divisor matching the pipeline baseline (default 512)
#   BENCH_TOLERANCE  fractional throughput regression allowed
set -eu

cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_pipeline.json}
STORE_BASELINE=${STORE_BASELINE:-BENCH_store.json}
SCALE=${BENCH_SCALE:-512}
TOL=${BENCH_TOLERANCE:-0.35}

[ -f "$BASELINE" ] || { echo "bench_gate: baseline $BASELINE missing (run make pipeline-bench and commit it)" >&2; exit 1; }
[ -f "$STORE_BASELINE" ] || { echo "bench_gate: baseline $STORE_BASELINE missing (run make store-bench and commit it)" >&2; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "bench_gate: fresh pipeline run (scale $SCALE) vs $BASELINE (tolerance $TOL)"
go run ./cmd/whowas-bench \
    -pipeline-bench "$WORK/fresh.json" \
    -pipeline-baseline "$BASELINE" \
    -pipeline-tolerance "$TOL" \
    -ec2-scale "$SCALE"

echo "bench_gate: fresh store run vs $STORE_BASELINE (tolerance $TOL)"
go run ./cmd/whowas-bench \
    -store-bench "$WORK/fresh_store.json" \
    -store-baseline "$STORE_BASELINE" \
    -store-tolerance "$TOL"

echo "bench_gate: PASS"
