#!/bin/sh
# bench_gate.sh — hold a fresh sharded-pipeline benchmark run to the
# committed baseline (BENCH_pipeline.json).
#
# The gate is two-layered:
#   - exact: the fresh run's store digest and record count must equal
#     the committed baseline's (the campaign is seeded; any drift means
#     the pipeline changed what it measures, not how fast);
#   - tolerant: the sharded run's record throughput must be within
#     BENCH_TOLERANCE (default 0.35, i.e. 35%) of the baseline's —
#     wide because runner hardware varies far more than code does.
#
# Regenerate the baseline intentionally with: make pipeline-bench
#
# Environment:
#   BENCH_SCALE      scale divisor matching the baseline (default 512)
#   BENCH_TOLERANCE  fractional throughput regression allowed
set -eu

cd "$(dirname "$0")/.."

BASELINE=${BASELINE:-BENCH_pipeline.json}
SCALE=${BENCH_SCALE:-512}
TOL=${BENCH_TOLERANCE:-0.35}

[ -f "$BASELINE" ] || { echo "bench_gate: baseline $BASELINE missing (run make pipeline-bench and commit it)" >&2; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

echo "bench_gate: fresh run (scale $SCALE) vs $BASELINE (tolerance $TOL)"
go run ./cmd/whowas-bench \
    -pipeline-bench "$WORK/fresh.json" \
    -pipeline-baseline "$BASELINE" \
    -pipeline-tolerance "$TOL" \
    -ec2-scale "$SCALE"

echo "bench_gate: PASS"
