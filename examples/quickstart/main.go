// Quickstart: stand up a small simulated EC2-like cloud, run a few
// WhoWas measurement rounds against it, and ask the platform's
// headline question — "who was at this IP over time?"
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"whowas/internal/cloudsim"
	"whowas/internal/cluster"
	"whowas/internal/core"
	"whowas/internal/store"
)

func main() {
	// A 1:1024-scale EC2: ~16k public IPs across 8 regions.
	platform, err := core.NewPlatform(cloudsim.DefaultEC2Config(1024, 42))
	if err != nil {
		log.Fatal(err)
	}

	// Probe the whole address space for six rounds (campaign days 0,
	// 3, 6, 9, 12, 15), fetching pages from every responsive web IP.
	cfg := core.FastCampaign()
	cfg.RoundDays = []int{0, 3, 6, 9, 12, 15}
	cfg.Observer = func(r core.RoundReport) {
		fmt.Printf("round %d (day %2d): %5d responsive IPs, %4d fetched, scan %s\n",
			r.Round, r.Day, r.Responsive, r.Fetched, r.Scan.Round(time.Millisecond))
	}
	if err := platform.RunCampaign(context.Background(), cfg); err != nil {
		log.Fatal(err)
	}

	// Cluster the <IP, round> observations into web services.
	if err := platform.RunClustering(cluster.Config{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nclustering: %d top-level -> %d second-level -> %d final clusters\n",
		platform.Clusters.TopLevel, platform.Clusters.SecondLevel, platform.Clusters.Final)

	// Pick an interesting IP: a member of the largest cluster.
	var biggest *cluster.Cluster
	for _, c := range platform.Clusters.Clusters {
		if biggest == nil || len(c.Records) > len(biggest.Records) {
			biggest = c
		}
	}
	ip := biggest.Records[0].IP

	// The headline lookup: per-round history of one address.
	fmt.Printf("\nwhowas %s?\n", ip)
	for _, rec := range platform.History(ip) {
		fmt.Printf("  round %d (day %2d): status=%d server=%q title=%q cluster=%d\n",
			rec.Round, rec.Day, rec.HTTPStatus, rec.Server, rec.Title, rec.Cluster)
	}

	// And the whole cluster it belongs to.
	fmt.Printf("\ncluster %d (%q) spans %d observations across %d rounds\n",
		biggest.ID, biggest.Title, len(biggest.Records), len(biggest.Rounds()))
	for _, round := range biggest.Rounds() {
		fmt.Printf("  round %d: %d IPs\n", round, biggest.IPsInRound(round))
	}
	_ = store.PortHTTP // the store package also exposes raw records; see whowas-query
}
