// Churn study: reproduce the §8.1 cloud-usage-dynamics analysis on a
// compact simulated EC2 — usage growth (Table 7 / Figure 8), IP status
// churn (Figure 9), cluster size-change patterns (Table 11), and
// intra-cluster IP uptime (Figure 12).
//
// Run with:
//
//	go run ./examples/churn-study
package main

import (
	"context"
	"fmt"
	"log"

	"whowas/internal/analysis"
	"whowas/internal/cloudsim"
	"whowas/internal/cluster"
	"whowas/internal/core"
)

func main() {
	platform, err := core.NewPlatform(cloudsim.DefaultEC2Config(512, 7))
	if err != nil {
		log.Fatal(err)
	}
	// The paper's full §6 schedule: every 3 days, then daily (51
	// rounds over 93 days).
	fmt.Println("running the full 51-round campaign (a minute or two)...")
	if err := platform.RunCampaign(context.Background(), core.FastCampaign()); err != nil {
		log.Fatal(err)
	}
	if err := platform.RunClustering(cluster.Config{}); err != nil {
		log.Fatal(err)
	}

	st := platform.Store
	fmt.Println()
	fmt.Println(analysis.Usage(st).Format("ec2"))
	fmt.Println(analysis.Churn(st).Format("ec2"))
	fmt.Println(analysis.Sizes(platform.Clusters).Format("ec2"))
	fmt.Println(analysis.SizePatterns(st, platform.Clusters, platform.Cloud.Days()).Format("ec2", 5))
	fmt.Println(analysis.IPUptimes(platform.Clusters).Format("ec2"))
	fmt.Println(analysis.FormatTopClusters("ec2",
		analysis.TopClusters(platform.Clusters, 10, platform.Cloud.RegionOf)))
}
