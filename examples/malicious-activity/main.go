// Malicious activity: reproduce the §8.2 blacklist study — join WhoWas
// observations with a Safe-Browsing-like URL feed and a
// VirusTotal-like IP report aggregator, measure malicious-IP lifetimes
// (Figure 16), the regional/domain breakdowns (Tables 17/18), the
// three content behaviours, and detection lag (Figure 19). Finally,
// use co-clustering to implicate additional IPs the feeds missed.
//
// Run with:
//
//	go run ./examples/malicious-activity
package main

import (
	"context"
	"fmt"
	"log"

	"whowas/internal/analysis"
	"whowas/internal/cloudsim"
	"whowas/internal/cluster"
	"whowas/internal/core"
)

func main() {
	platform, err := core.NewPlatform(cloudsim.DefaultEC2Config(512, 99))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running the full 51-round campaign (a minute or two)...")
	if err := platform.RunCampaign(context.Background(), core.FastCampaign()); err != nil {
		log.Fatal(err)
	}
	if err := platform.RunClustering(cluster.Config{}); err != nil {
		log.Fatal(err)
	}

	// Safe Browsing: URL verdicts per round (Figure 16).
	sb := analysis.SafeBrowsing(platform.Store, platform.Feeds.SafeBrowsing)
	fmt.Println()
	fmt.Println(sb.Format("ec2"))

	// VirusTotal: >=2-engine consensus IP reports (Tables 17/18,
	// behaviour types, Figure 19, cluster expansion).
	months := analysis.DefaultMonths(platform.Cloud.Days())
	vt := analysis.VirusTotal(platform.Store, platform.Feeds.VirusTotal,
		platform.Clusters, platform.Cloud.RegionOf, months, 2)
	fmt.Println(vt.Format("ec2"))

	// Inspect one malicious IP's history the way an analyst would.
	if ips := platform.Feeds.VirusTotal.MaliciousIPs(2); len(ips) > 0 {
		ip := ips[0]
		fmt.Printf("example malicious IP %s history:\n", ip)
		for _, rec := range platform.History(ip) {
			fmt.Printf("  round %2d: status=%d links=%d cluster=%d\n",
				rec.Round, rec.HTTPStatus, len(rec.Links), rec.Cluster)
		}
	}
	_ = context.Background
}
