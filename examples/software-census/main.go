// Software census: reproduce the §8.3 web-software-ecosystem study on
// a simulated Azure and EC2 — server/backend/template families and
// versions (including the dated, vulnerable releases the paper
// highlights), and the Table 20 third-party tracker census with
// Google Analytics account statistics.
//
// Run with:
//
//	go run ./examples/software-census
package main

import (
	"context"
	"fmt"
	"log"

	"whowas/internal/analysis"
	"whowas/internal/cloudsim"
	"whowas/internal/cluster"
	"whowas/internal/core"
)

func main() {
	for _, spec := range []struct {
		name string
		cfg  cloudsim.Config
		// a short schedule suffices: the census is per-round averaged
		rounds []int
	}{
		{"ec2", cloudsim.DefaultEC2Config(512, 3), []int{0, 3, 6, 9, 12}},
		{"azure", cloudsim.DefaultAzureConfig(128, 4), []int{0, 3, 6, 9, 12}},
	} {
		platform, err := core.NewPlatform(spec.cfg)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.FastCampaign()
		cfg.RoundDays = spec.rounds
		fmt.Printf("measuring %s (%d rounds)...\n", spec.name, len(spec.rounds))
		if err := platform.RunCampaign(context.Background(), cfg); err != nil {
			log.Fatal(err)
		}
		if err := platform.RunClustering(cluster.Config{}); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		fmt.Println(analysis.Census(platform.Store).Format(spec.name))
		fmt.Println(analysis.Trackers(platform.Store).Format(spec.name))
	}
}
