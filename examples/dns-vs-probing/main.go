// DNS interrogation vs direct probing: reproduce the methodological
// comparison that motivates WhoWas (§1/§3). Prior work discovered
// cloud deployments by resolving seed-list domains; WhoWas probes the
// provider's address ranges directly. The baseline sees only
// registered, resolvable domains with capped DNS answers — direct
// probing sees every publicly reachable deployment.
//
// Run with:
//
//	go run ./examples/dns-vs-probing
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"whowas/internal/baseline"
	"whowas/internal/cloudapi"
	"whowas/internal/cloudsim"
	"whowas/internal/core"
	"whowas/internal/dnssim"
	"whowas/internal/ratelimit"
	"whowas/internal/store"
)

func main() {
	platform, err := core.NewPlatform(cloudsim.DefaultEC2Config(1024, 17))
	if err != nil {
		log.Fatal(err)
	}
	// One probing round suffices for a same-day comparison.
	cfg := core.FastCampaign()
	cfg.RoundDays = []int{0}
	fmt.Println("direct probing: scanning the full address range...")
	if err := platform.RunCampaign(context.Background(), cfg); err != nil {
		log.Fatal(err)
	}
	directWeb := 0
	platform.Store.Round(0).Each(func(rec *store.Record) bool {
		if rec.WebOpen() {
			directWeb++
		}
		return true
	})

	fmt.Println("DNS interrogation: resolving the seed-list domains...")
	resolver := dnssim.NewResolver(cloudapi.Sim(platform.Cloud), 0)
	for _, seedShare := range []float64{1.0, 0.8, 0.5} {
		res, err := baseline.Sweep(context.Background(), resolver, 0, baseline.Config{
			Rate:      1e6,
			Clock:     ratelimit.NewFakeClock(time.Unix(0, 0)),
			SeedShare: seedShare,
		})
		if err != nil {
			log.Fatal(err)
		}
		res.DirectWebIPs = directWeb
		fmt.Printf("  seed coverage %3.0f%%: %s\n", 100*seedShare, res.Format("ec2"))
	}
	fmt.Println("\nDNS interrogation structurally undercounts: unregistered deployments,")
	fmt.Println("capped answer sets, and per-domain views never reveal the cloud-wide footprint.")
}
