# Convenience targets mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build vet lint test race fuzz chaos trace bench pipeline-bench store-bench bench-gate metrics-report cloudd coord store

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-invariant static analysis (what the CI lint job runs): vet,
# gofmt, then the determinism / nilsafe / ctxfirst / errcheck /
# lockdisc suite plus the call-graph analyzers (goleak / wiretag /
# atomicwrite / budgetpath) over the whole module. Non-zero exit on
# any unsuppressed finding.
lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt -l:"; echo "$$out"; exit 1; fi
	$(GO) run ./cmd/whowas-lint ./...

# Fast loop: skips the full-campaign integration tests.
test:
	$(GO) test -short ./...

# What CI runs; the campaign fixtures shrink under -race. The
# concurrency-heavy packages go first, twice, so a schedule-dependent
# race has two chances to interleave before the full-module pass.
race:
	$(GO) test -race -count=2 -timeout 20m \
		./internal/coord/ ./internal/pipeline/ ./internal/fleetobs/ \
		./internal/cloudapi/ ./internal/ops/
	$(GO) test -race -timeout 40m ./...

# Short native-fuzzing smoke over the parser surfaces (what the CI
# fuzz job runs). The seed corpora always run under plain `make test`;
# this target additionally explores for a bounded time per target.
FUZZTIME ?= 30s
fuzz:
	$(GO) test ./internal/htmlparse -fuzz FuzzParseHTML -fuzztime $(FUZZTIME)
	$(GO) test ./internal/simhash -fuzz FuzzSimhash -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ipaddr -fuzz FuzzParseIPRange -fuzztime $(FUZZTIME)

# Fault-injection + resilience suites (what the CI chaos job runs):
# -count=2 replays every deterministic campaign against its first
# digest.
chaos:
	$(GO) test -race -count=2 -timeout 40m \
		./internal/faults/ ./internal/scanner/ ./internal/fetcher/ ./internal/store/
	$(GO) test -race -count=2 -timeout 40m -run TestChaos ./internal/core/
	$(GO) run ./cmd/whowas -scale 4096 -rounds 3 -q \
		-faults scenarios/chaos.json -retries 3 -round-timeout 2m \
		-cluster=false -carto=false -metrics chaos-metrics.json
	@echo "wrote chaos-metrics.json"

# Flight recorder: a short faulty campaign with the ops endpoint and
# span journal on, then the per-round latency breakdown (what the CI
# trace job runs).
trace:
	$(GO) run ./cmd/whowas -scale 8192 -rounds 2 -q \
		-faults scenarios/chaos.json -retries 3 -round-timeout 2m \
		-cluster=false -carto=false \
		-ops-addr 127.0.0.1:8377 -trace-journal trace-journal.jsonl
	$(GO) run ./cmd/whowas-query trace -journal trace-journal.jsonl -slowest 3

# Regenerate every paper table/figure benchmark.
bench:
	$(GO) test -bench . -benchmem ./...

# Regenerate the committed sharded-round benchmark baseline
# (BENCH_pipeline.json). Commit the result; bench-gate compares
# against it.
pipeline-bench:
	$(GO) run ./cmd/whowas-bench -pipeline-bench BENCH_pipeline.json -ec2-scale 512
	@echo "wrote BENCH_pipeline.json"

# Regenerate the committed store-engine benchmark baseline
# (BENCH_store.json): per-op latency and on-disk bytes for the
# in-memory and columnar backends on one synthetic campaign. Commit
# the result; bench-gate compares against it.
store-bench:
	$(GO) run ./cmd/whowas-bench -store-bench BENCH_store.json
	@echo "wrote BENCH_store.json"

# Hold fresh benchmark runs to the committed baselines (what the CI
# pipeline-bench job runs): digests, record counts, and on-disk bytes
# exact; throughput/latency within BENCH_TOLERANCE.
bench-gate:
	sh scripts/bench_gate.sh

# Cloud-boundary acceptance gate (what the CI cloudd job runs): start
# whowas-cloudd, run the same seeded campaign over the wire and
# in-process, and require byte-identical store digests.
cloudd:
	sh scripts/cloudd_gate.sh

# Distributed-campaign acceptance gate (what the CI coord job runs):
# start whowas-cloudd, run the same seeded campaign single-process and
# via whowas-coordinator fleets of 1/2/4 workers (one of the 4 is
# SIGKILLed mid-campaign), and require byte-identical store digests.
coord:
	sh scripts/coord_gate.sh

# Storage-engine acceptance gate (what the CI store job runs): the
# same seeded campaign on the in-memory and columnar backends at 1/2/4
# pipeline shards plus a 2-worker fleet on -store-dir, all digests and
# -out gobs byte-identical, and gob->columnar conversion
# digest-identical.
store:
	sh scripts/store_gate.sh

# Example pipeline-metrics report (README "Observability").
metrics-report:
	$(GO) run ./cmd/whowas -cloud ec2 -scale 1024 -rounds 3 -metrics metrics.json
	@echo "wrote metrics.json"
