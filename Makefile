# Convenience targets mirroring .github/workflows/ci.yml.

GO ?= go

.PHONY: all build vet test race bench metrics-report

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Fast loop: skips the full-campaign integration tests.
test:
	$(GO) test -short ./...

# What CI runs; the campaign fixtures shrink under -race.
race:
	$(GO) test -race -timeout 40m ./...

# Regenerate every paper table/figure benchmark.
bench:
	$(GO) test -bench . -benchmem ./...

# Example pipeline-metrics report (README "Observability").
metrics-report:
	$(GO) run ./cmd/whowas -cloud ec2 -scale 1024 -rounds 3 -metrics metrics.json
	@echo "wrote metrics.json"
