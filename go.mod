module whowas

go 1.22
