// Ablation benchmarks for the design choices DESIGN.md calls out: the
// gap-statistic threshold vs fixed thresholds, the merge heuristic,
// the cleaning pass, and the GA-ID-only association alternative —
// plus a ground-truth accuracy evaluation the simulator makes
// possible.
package main

import (
	"testing"
)

func BenchmarkAblationClustering(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.AblationClustering()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report("Clustering ablation", out)
		}
	}
}

func BenchmarkClusteringAccuracy(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Clustering accuracy vs ground truth", s.ClusteringAccuracy())
	}
}
