// Benchmarks that regenerate every table and figure of the paper's
// evaluation. The first benchmark to run builds the shared suite (two
// full simulated-cloud campaigns + cartography + clustering, a few
// minutes on one core); every benchmark then re-times its analysis and
// prints the regenerated rows once.
//
//	go test -bench . -benchmem            # full suite
//	WHOWAS_SCALE=4 go test -bench .       # 4x smaller clouds
//	go test -bench BenchmarkTable7 -v
//
// EXPERIMENTS.md records how each output compares with the paper.
package main

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"whowas/internal/experiments"
)

var printOnce sync.Map

// report prints an experiment's regenerated output once per process.
func report(id, output string) {
	if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
		fmt.Printf("\n==== %s ====\n%s\n", id, output)
	}
}

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	s, err := experiments.Shared()
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkSec4TimeoutExperiment(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.Sec4TimeoutExperiment(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report("§4 timeout experiment", out)
		}
	}
}

func BenchmarkTable2VPCPrefixes(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 2", s.Table2())
	}
}

func BenchmarkTable3OpenPorts(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 3", s.Table3())
	}
}

func BenchmarkTable4StatusCodes(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 4", s.Table4())
	}
}

func BenchmarkTable5ContentTypes(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 5", s.Table5())
	}
}

func BenchmarkTable6ClusteringSummary(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 6", s.Table6())
	}
}

func BenchmarkTable7UsageSummary(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 7", s.Table7())
	}
}

func BenchmarkFigure8UsageTimeSeries(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Figure 8", s.Figure8())
	}
}

func BenchmarkFigure9ChurnTimeSeries(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Figure 9", s.Figure9())
	}
}

func BenchmarkFigure10ClusterAvailability(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Figure 10", s.Figure10())
	}
}

func BenchmarkTable11SizePatterns(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 11", s.Table11())
	}
}

func BenchmarkFigure12UptimeCDF(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Figure 12", s.Figure12())
	}
}

func BenchmarkFigure13VPCTimeSeries(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Figure 13", s.Figure13())
	}
}

func BenchmarkFigure14VPCClusters(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Figure 14", s.Figure14())
	}
}

func BenchmarkTable15TopClusters(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 15", s.Table15())
	}
}

func BenchmarkSec81Extras(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("§8.1 extras", s.Sec81Extras())
	}
}

func BenchmarkFigure16MaliciousLifetimes(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Figure 16", s.Figure16())
	}
}

func BenchmarkTable17MaliciousByRegion(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Tables 17/18", s.Table17And18())
	}
}

func BenchmarkTable18MaliciousDomains(b *testing.B) {
	// Table 18 is produced by the same VirusTotal join as Table 17;
	// this benchmark times the join in isolation.
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := s.Table17And18()
		if i == 0 {
			report("Table 18 (with 17)", out)
		}
	}
}

func BenchmarkFigure19DetectionLag(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Figure 19", s.Figure19())
	}
}

func BenchmarkSec82ClusterExpansion(b *testing.B) {
	// The expansion count is part of the Figure 19 output.
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := s.Figure19()
		if i == 0 {
			report("§8.2 cluster expansion", out)
		}
	}
}

func BenchmarkSec82Linchpins(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("§8.2 linchpins", s.Linchpins())
	}
}

func BenchmarkSec83SoftwareCensus(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("§8.3 census", s.Sec83Census())
	}
}

func BenchmarkTable20Trackers(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report("Table 20", s.Table20())
	}
}

func BenchmarkBaselineDNSCoverage(b *testing.B) {
	s := suite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.BaselineComparison(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			report("DNS baseline", out)
		}
	}
}
